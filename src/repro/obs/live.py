"""The live metrics plane: streaming histograms, flight recorder, drift watch.

:mod:`repro.obs.recorder` is a *post-mortem* instrument — spans and
counters surface in ``trace.jsonl``/``manifest.json`` at process exit.
This module is the *online* complement the running service needs: the
paper's whole argument rests on observed bandwidth matching the Eq. 1
class model, and a serving process must be able to show — while it is
up — its tier hit-rates, its latency percentiles, and whether the
answers it serves are drifting away from the characterization behind
them.  Four pieces, all always-on and always-cheap (plain dict/array
updates; the overhead gate in ``scripts/bench_service.py`` pins the
cost under 5 % of serving throughput):

* :class:`Hist` — mergeable log-bucketed streaming histograms with
  exact count/sum and p50/p90/p99 extraction.  Merging two histograms
  is bucket-wise addition, bit-identical to having fed one histogram
  the concatenated stream (the property suite pins the merge laws), so
  per-``(method, tier)`` recordings can be folded into per-method and
  per-tier views at read time instead of paying two updates per
  request.
* :class:`FlightRecorder` — a bounded ring buffer holding the last N
  completed request spans and the last K error/degraded/slow/drift
  events with their tags.  Dumpable on demand (``obs tail``, the
  ``metrics`` method) and automatically on breaker trip or crash,
  without waiting for process exit.
* :class:`LivePlane` — the registry tying them together: named
  histograms, named counters, the flight recorder, and grafted gauge
  sources (the fabric pool's utilization counters).  The service owns
  one plane; every duration it records is measured on the *service
  clock*, so the deterministic soak (logical clock) reads no wall
  clock anywhere and same-seed twins stay byte-identical.
* :class:`DriftWatch` — per-``(target, mode)`` online estimators fed
  by every tier-3 solve and every served tier-1/2 answer.  When a new
  solve lands, the watch compares it against the class model the fast
  tiers have been serving, classifies the regime DAMOV-style
  (bandwidth-, latency-, or contention-bound), and — past the
  threshold — emits a flight-recorder event plus ``service.drift.*``
  counters: the hook a future online re-characterization loop
  consumes.

:func:`render_scrape` turns the ``metrics`` method's JSON payload into
Prometheus-style text exposition with stable ordering, so ``repro-numa
obs scrape`` output is a pure function of the payload.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from typing import Callable, Mapping

from repro.obs import recorder as _obs

__all__ = [
    "Hist",
    "FlightRecorder",
    "LivePlane",
    "NullLivePlane",
    "DriftWatch",
    "classify_regime",
    "render_scrape",
]

#: Log-bucket base: four buckets per octave (~19 % relative width), so
#: any quantile read off a bucket upper bound is within one bucket
#: width of the true empirical quantile.
HIST_BASE = 2.0 ** 0.25

_LOG_BASE = math.log(HIST_BASE)
_INV_LOG_BASE = 1.0 / _LOG_BASE

#: Bucket index reserved for values <= 0 (logical-clock durations are
#: exactly 0.0, and they must not touch ``math.log``).
ZERO_BUCKET = -(2 ** 31)

#: Default flight-recorder ring capacities (completed spans / events).
SPAN_CAPACITY = 256
EVENT_CAPACITY = 64

#: Quantiles every histogram summary extracts.
_QUANTILES = ((0.50, "p50"), (0.90, "p90"), (0.99, "p99"))


class Hist:
    """A mergeable log-bucketed streaming histogram.

    Values land in buckets ``(base**(i-1), base**i]`` with
    ``base = 2**0.25``; non-positive values land in a dedicated zero
    bucket.  ``count``/``sum``/``min``/``max`` are exact; quantiles are
    read as the upper bound of the bucket where the cumulative count
    crosses ``ceil(q * count)``, so they are within one bucket width
    (~19 %) of the true empirical quantile.

    Recording is two dict updates and four scalar updates (one
    ``math.log`` for positive values) — cheap enough to sit on the
    tier-1 serving path.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    @staticmethod
    def bucket_index(value: float) -> int:
        """The bucket holding ``value`` (``ZERO_BUCKET`` for <= 0)."""
        if value <= 0.0:
            return ZERO_BUCKET
        return math.ceil(math.log(value) * _INV_LOG_BASE)

    @staticmethod
    def bucket_upper(index: int) -> float:
        """The inclusive upper bound of bucket ``index``."""
        if index == ZERO_BUCKET:
            return 0.0
        return HIST_BASE ** index

    def record(self, value: float) -> None:
        """Fold one observation in."""
        if value <= 0.0:
            idx = ZERO_BUCKET
        else:
            idx = math.ceil(math.log(value) * _INV_LOG_BASE)
        counts = self.counts
        counts[idx] = counts.get(idx, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, value: float, n: int) -> None:
        """Fold ``n`` identical observations in — one bucket update.

        Equivalent to ``n`` calls to :meth:`record` (the sum differs
        only by float addition order).  This is the batched-drain fast
        path: the service groups buffered observations by value first,
        so a whole batch of tier-1 answers lands as one dict update.
        """
        if value <= 0.0:
            idx = ZERO_BUCKET
        else:
            idx = math.ceil(math.log(value) * _INV_LOG_BASE)
        counts = self.counts
        counts[idx] = counts.get(idx, 0) + n
        self.count += n
        self.sum += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Hist") -> "Hist":
        """Fold ``other`` in (bucket-wise addition); returns ``self``.

        ``merge(a, b)`` leaves ``a`` with exactly the bucket counts,
        count, min and max it would hold had it been fed ``b``'s stream
        after its own (sums agree up to float addition order).
        """
        counts = self.counts
        for idx, n in other.counts.items():
            counts[idx] = counts.get(idx, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def quantile(self, q: float) -> "float | None":
        """The bucket upper bound at quantile ``q`` (``None`` if empty)."""
        if not self.count:
            return None
        k = min(max(math.ceil(q * self.count), 1), self.count)
        cumulative = 0
        for idx in sorted(self.counts):
            cumulative += self.counts[idx]
            if cumulative >= k:
                return self.bucket_upper(idx)
        return self.bucket_upper(idx)  # pragma: no cover - unreachable

    def percentiles(self) -> dict:
        """``{"p50": ..., "p90": ..., "p99": ...}`` (``None`` if empty)."""
        return {name: self.quantile(q) for q, name in _QUANTILES}

    def to_dict(self) -> dict:
        """JSON-able summary: exact moments, quantiles, sparse buckets.

        ``buckets`` rows are ``[upper_bound, count]`` in bucket order
        (non-cumulative); every float is rounded to 9 decimals so
        logical-clock twins encode byte-identically.  One sorted walk
        serves the bucket rows and all three quantiles (the ``metrics``
        method renders every histogram per call).
        """
        items = sorted(self.counts.items())
        n = self.count
        summary = {
            "count": n,
            "sum": round(self.sum, 9),
            "min": round(self.min, 9) if n else None,
            "max": round(self.max, 9) if n else None,
            "buckets": [
                [round(self.bucket_upper(idx), 9), count]
                for idx, count in items
            ],
        }
        if not n:
            for _q, name in _QUANTILES:
                summary[name] = None
            return summary
        targets = [
            (min(max(math.ceil(q * n), 1), n), name) for q, name in _QUANTILES
        ]
        cumulative = 0
        pos = 0
        for (upper, count), _idx in zip(summary["buckets"], items):
            cumulative += count
            while pos < len(targets) and cumulative >= targets[pos][0]:
                summary[targets[pos][1]] = upper
                pos += 1
            if pos == len(targets):
                break
        return summary


class FlightRecorder:
    """A bounded ring buffer of recent spans and notable events.

    Two independent rings: ``spans`` holds the last N *completed
    request spans* (method, tier tag, wall time), ``events`` the last
    K notable events (typed errors, degraded answers, slow requests,
    drift detections, breaker trips).  Both rings are C-evicting
    :class:`~collections.deque`\\ s; span sequence numbers are not
    stored but derived — span ``i`` of the retained window has
    sequence ``span_total - len(window) + i`` — so :meth:`spans` can
    still tell a reader how much history fell off the end.  Spans
    arrive either one at a time (:meth:`note_span`) or as a whole
    drained batch (:meth:`note_spans`, one C-speed ``extend``).
    """

    def __init__(
        self,
        span_capacity: int = SPAN_CAPACITY,
        event_capacity: int = EVENT_CAPACITY,
    ) -> None:
        if span_capacity < 1 or event_capacity < 1:
            raise ValueError(
                f"ring capacities must be >= 1, got "
                f"({span_capacity}, {event_capacity})"
            )
        self.span_capacity = span_capacity
        self.event_capacity = event_capacity
        self._spans: deque = deque(maxlen=span_capacity)
        self._events: deque = deque(maxlen=event_capacity)
        self.span_total = 0  # spans ever recorded (seq source)
        self.event_total = 0

    def note_span(self, t: float, name: str, wall_s: float, tag=None) -> None:
        """Record one completed span (overwrites the oldest when full).

        ``tag`` is one scalar annotation (the service stores the answer
        tier).  Stores a bare ``(t, name, wall_s, tag)`` tuple;
        :meth:`spans` renders the dict form.
        """
        self._spans.append((t, name, wall_s, tag))
        self.span_total += 1

    def note_spans(self, batch: list) -> None:
        """Bulk-record completed ``(t, name, wall_s, tag)`` spans.

        One ``deque.extend`` — the ring keeps the newest
        ``span_capacity`` of the batch, exactly as if each span had
        been fed through :meth:`note_span` in order.
        """
        self._spans.extend(batch)
        self.span_total += len(batch)

    def note_event(
        self, t: float, kind: str, tags: "Mapping | None" = None
    ) -> None:
        """Record one notable event (overwrites the oldest when full)."""
        record = {"seq": self.event_total, "t": round(t, 6), "kind": kind}
        if tags:
            record["tags"] = dict(tags)
        self._events.append(record)
        self.event_total += 1

    def spans(self) -> list:
        """Retained spans as JSON-able dicts, oldest first."""
        base = self.span_total - len(self._spans)
        return [
            {
                "seq": base + i,
                "t": round(t, 6),
                "name": name,
                "wall_s": round(wall_s, 9),
                "tag": tag,
            }
            for i, (t, name, wall_s, tag) in enumerate(self._spans)
        ]

    def events(self) -> list:
        """Retained events, oldest first."""
        return list(self._events)

    def occupancy(self) -> dict:
        """Ring fill state for ``health``/``metrics`` payloads."""
        return {
            "spans": len(self._spans),
            "span_capacity": self.span_capacity,
            "span_total": self.span_total,
            "events": len(self._events),
            "event_capacity": self.event_capacity,
            "event_total": self.event_total,
        }

    def dump(self) -> dict:
        """Everything retained, JSON-able, oldest first — on demand,
        on breaker trip, or on crash; never waits for process exit."""
        return {
            "occupancy": self.occupancy(),
            "spans": self.spans(),
            "events": self.events(),
        }


class LivePlane:
    """The always-on online metrics registry for one serving process.

    Named :class:`Hist` histograms, named integer counters, one
    :class:`FlightRecorder`, and grafted gauge sources — zero external
    dependencies, no background threads, no wall-clock reads of its
    own (every duration recorded into it was measured on the caller's
    clock).  Distinct from :data:`repro.obs.metrics.metrics`: that
    registry only fills while a :class:`~repro.obs.recorder.TraceRecorder`
    is installed; the live plane is always on and must therefore stay
    cheap enough to never need a switch.
    """

    enabled = True

    def __init__(
        self,
        span_capacity: int = SPAN_CAPACITY,
        event_capacity: int = EVENT_CAPACITY,
    ) -> None:
        self.hists: dict[str, Hist] = {}
        self.counters: dict[str, int] = {}
        self.flight = FlightRecorder(span_capacity, event_capacity)
        #: name -> zero-arg callable returning a JSON-able gauge block
        #: (the fabric pool grafts its ``stats`` here).
        self.gauge_sources: dict[str, Callable[[], dict]] = {}

    def hist(self, name: str) -> Hist:
        """The named histogram (created empty on first use)."""
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Hist()
        return hist

    def record(self, name: str, value: float) -> None:
        """Fold ``value`` into the named histogram."""
        self.hist(name).record(value)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter (created at zero)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def graft_gauges(self, name: str, source: Callable[[], dict]) -> None:
        """Register a live gauge source (read at snapshot time)."""
        self.gauge_sources[name] = source

    def gauges(self) -> dict:
        """Every grafted gauge block, read now, sorted by name."""
        return {
            name: self.gauge_sources[name]()
            for name in sorted(self.gauge_sources)
        }

    def merged_hists(self) -> "dict[str, Hist]":
        """The exposition view of :attr:`hists`, sorted by name.

        Hot-path recordings land in one histogram per
        ``(method, tier)`` under ``service.latency/<method>/<tier>``;
        this view folds them (bucket-wise merges — the reason
        histograms are mergeable) into ``service.latency.method.
        <method>`` and ``service.latency.tier.<tier>`` aggregates.
        The raw per-pair histograms stay in-process only: the merged
        views are the exposition surface, and rendering the raw pairs
        too would double the cost of every ``metrics`` call.
        """
        merged: dict[str, Hist] = {}
        for name, hist in self.hists.items():
            if not name.startswith("service.latency/"):
                merged[name] = hist
                continue
            _prefix, method, tier = name.split("/", 2)
            by_method = f"service.latency.method.{method}"
            merged.setdefault(by_method, Hist()).merge(hist)
            if tier != "-":
                merged.setdefault(
                    f"service.latency.tier.{tier}", Hist()
                ).merge(hist)
        return {name: merged[name] for name in sorted(merged)}

    def snapshot(self) -> dict:
        """JSON-able plane state: counters, histogram summaries, gauges,
        flight-recorder occupancy.  Stable ordering throughout."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "histograms": {
                name: hist.to_dict()
                for name, hist in self.merged_hists().items()
            },
            "gauges": self.gauges(),
            "flight_recorder": self.flight.occupancy(),
        }


class NullLivePlane(LivePlane):
    """A disabled plane: every write is a no-op (overhead measurement).

    The live plane ships always-on; this exists so
    ``scripts/bench_service.py`` can measure exactly what that costs
    (and gate it under 5 %), and so library callers embedding
    :class:`~repro.service.server.PlacementService` can opt out.
    """

    enabled = False

    def record(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def count(self, name: str, n: int = 1) -> None:  # noqa: D102
        pass


#: Drift regimes, DAMOV-style: what kind of bound moved the classes.
REGIME_BANDWIDTH = "bandwidth-bound"
REGIME_CONTENTION = "contention-bound"
REGIME_LATENCY = "latency-bound"
REGIME_RECLASSIFIED = "reclassified"


def classify_regime(
    old_avgs: "Mapping[int, float]",
    new_avgs: "Mapping[int, float]",
    threshold: float,
) -> tuple[str, float]:
    """Label how the class model moved between two characterizations.

    Returns ``(regime, mean_abs_shift)`` from the per-class relative
    deltas of the ranks both models share, DAMOV-style:

    * ``bandwidth-bound`` — every shared class shifted by about the
      same fraction: the pipe itself changed (a throttled link, a
      derated controller), the class *structure* held.
    * ``contention-bound`` — classes shifted unequally (spread larger
      than half the mean shift): some classes' shared paths are
      contended while others are not.
    * ``latency-bound`` — the mean shift is below ``threshold``: the
      deviation did not come from class-level bandwidth at all
      (timing/noise-level movement).
    * ``reclassified`` — the models share no class ranks; the
      equivalence structure itself changed.
    """
    shared = sorted(set(old_avgs) & set(new_avgs))
    if not shared:
        return REGIME_RECLASSIFIED, math.inf
    deltas = [
        (new_avgs[rank] - old_avgs[rank]) / old_avgs[rank] for rank in shared
    ]
    mean_abs = sum(abs(d) for d in deltas) / len(deltas)
    if mean_abs < threshold:
        return REGIME_LATENCY, mean_abs
    spread = max(deltas) - min(deltas)
    if spread > 0.5 * mean_abs:
        return REGIME_CONTENTION, mean_abs
    return REGIME_BANDWIDTH, mean_abs


class DriftWatch:
    """Detect served answers drifting away from the characterization.

    Per ``(target, mode)`` the watch keeps the latest tier-3 class
    model (its per-class averages and their mean) and an online
    estimator of the class-model mean behind every tier-1/2 answer
    served since.  When the next solve lands, the relative deviation
    of what was *served* (the estimator mean — exactly the superseded
    model when no fault intervened) from what is now *observed* (the
    fresh solve) is computed; past ``threshold`` the watch emits one
    flight-recorder ``drift`` event carrying the deviation, the
    DAMOV-style regime, and the exposure (answers served off the
    superseded model), and bumps the ``service.drift.*`` counters —
    the trigger a future online re-characterization loop consumes.

    Folding an answer in is one flat three-scalar ``list.extend`` on
    the tier-1 path (flat so the pending buffer stays invisible to the
    cyclic GC); the buffered ``target, mode, model_mean`` triples are
    grouped (C-speed :class:`~collections.Counter` — a fast tier
    serves the same model mean until superseded, so a batch collapses
    to a handful of groups) and folded into the estimators whenever a
    solve lands or the stats are read.
    """

    #: Pending-answer buffer size that forces a fold (memory bound).
    PENDING_CAP = 8192

    def __init__(self, plane: LivePlane, threshold: float = 0.10) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(
                f"drift threshold must be in (0, 1), got {threshold}"
            )
        self.plane = plane
        self.threshold = threshold
        #: (target, mode) -> (model mean Gbps, {rank: avg}) of latest solve
        self.refs: dict[tuple[int, str], tuple[float, dict[int, float]]] = {}
        #: (target, mode) -> [answers served, summed model means]
        self.served: dict[tuple[int, str], list] = {}
        #: served answers appended but not yet folded into ``served``
        self._pending: list = []
        #: The C fast path the backend binds: ``note_fast((t, m, mean))``
        #: is ``note_answer`` without the Python frame.  ``_pending`` is
        #: only ever cleared in place, so the bound method stays valid.
        self.note_fast = self._pending.extend
        self.events = 0
        self.last: "dict | None" = None

    def note_answer(self, target: int, mode: str, model_mean: float) -> None:
        """Fold one served tier-1/2 answer into its online estimator.

        Deliberately just the extend — no cap check here; this sits on
        the tier-1 serving path.  The buffer is bounded by the owner:
        every solve and every stats read folds it, and the service's
        periodic observation drain calls :meth:`fold_if_large`.
        """
        self._pending.extend((target, mode, model_mean))

    def fold_if_large(self) -> None:
        """Fold the pending buffer once it crosses :data:`PENDING_CAP`
        triples — the memory bound, checked batched by the owner."""
        if len(self._pending) >= 3 * self.PENDING_CAP:
            self._fold_pending()

    def _fold_pending(self) -> None:
        """Group and fold buffered answers into :attr:`served`."""
        pending = self._pending
        if not pending:
            return
        served = self.served
        groups = Counter(zip(pending[0::3], pending[1::3], pending[2::3]))
        for (target, mode, model_mean), n in groups.items():
            est = served.get((target, mode))
            if est is None:
                served[(target, mode)] = [n, model_mean * n]
            else:
                est[0] += n
                est[1] += model_mean * n
        pending.clear()

    def note_solve(
        self,
        target: int,
        mode: str,
        class_avgs: "Mapping[int, float]",
        now: float,
    ) -> "dict | None":
        """Fold one completed tier-3 solve in; returns the drift event
        it fired, or ``None`` while observation tracks the model."""
        self._fold_pending()  # answers served before this solve count
        key = (target, mode)
        avgs = dict(class_avgs)
        mean = sum(avgs.values()) / len(avgs)
        previous = self.refs.get(key)
        served = self.served.pop(key, None)
        self.refs[key] = (mean, avgs)
        if previous is None:
            return None  # first characterization: nothing to drift from
        plane = self.plane
        plane.count("service.drift.checks")
        prev_mean, prev_avgs = previous
        # What the fast tiers served since the last solve; with no
        # tier-1/2 traffic in between, the superseded model itself.
        served_mean = served[1] / served[0] if served else prev_mean
        deviation = abs(served_mean - mean) / mean
        if deviation <= self.threshold:
            return None
        regime, shift = classify_regime(prev_avgs, avgs, self.threshold)
        self.events += 1
        event = {
            "target": target,
            "mode": mode,
            "deviation": round(deviation, 6),
            "regime": regime,
            "served_answers": served[0] if served else 0,
            "served_mean_gbps": round(served_mean, 6),
            "observed_mean_gbps": round(mean, 6),
            "mean_abs_shift": round(shift, 6) if shift != math.inf else None,
        }
        self.last = event
        plane.count("service.drift.events")
        plane.count(f"service.drift.regime.{regime}")
        plane.flight.note_event(now, "drift", event)
        # Mirror into the post-mortem registry when a recorder is live,
        # so --obs-dir manifests carry the drift verdicts too.
        _obs.count("service.drift.events")
        return event

    def stats(self) -> dict:
        """JSON-able watch state for ``metrics`` payloads."""
        self._fold_pending()
        return {
            "threshold": self.threshold,
            "events": self.events,
            "watched": len(self.refs),
            "last": self.last,
        }


# --- Prometheus-style exposition -------------------------------------------

def _sanitize(name: str) -> str:
    """A metric name Prometheus accepts: ``[a-zA-Z0-9_]`` only."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _fmt(value) -> str:
    """A float/int formatted the way the exposition format expects."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _flatten_gauges(prefix: str, block, lines: list) -> None:
    """Emit one line per numeric leaf of a grafted gauge block."""
    if isinstance(block, Mapping):
        for key in sorted(block):
            _flatten_gauges(f"{prefix}_{_sanitize(str(key))}", block[key], lines)
        return
    if isinstance(block, (int, float)) and not isinstance(block, bool):
        lines.append(f"{prefix} {_fmt(block)}")
    elif isinstance(block, bool):
        lines.append(f"{prefix} {_fmt(block)}")
    elif isinstance(block, str):
        lines.append(f'{prefix}{{value="{block}"}} 1')
    # non-scalar leaves (None, lists) are skipped: exposition is numeric


def render_scrape(payload: Mapping, prefix: str = "repro") -> str:
    """The ``metrics`` payload as Prometheus-style text exposition.

    Stable ordering (sorted names, sorted buckets), no clock reads —
    the output is a pure function of the payload, which is what lets
    ``scripts/obs_smoke.sh`` hold a golden copy of a deterministic
    session's scrape.  Histograms emit cumulative ``_bucket{le=...}``
    rows plus ``_count``/``_sum`` and ``p50/p90/p99`` quantile rows;
    counters and gauges emit single sample rows.
    """
    lines: list[str] = []

    uptime = payload.get("uptime_s")
    if uptime is not None:
        lines.append(f"# TYPE {prefix}_uptime_seconds gauge")
        lines.append(f"{prefix}_uptime_seconds {_fmt(uptime)}")
    if "requests" in payload:
        lines.append(f"# TYPE {prefix}_service_requests_total counter")
        lines.append(
            f"{prefix}_service_requests_total {_fmt(payload['requests'])}"
        )
    if "degraded_served" in payload:
        lines.append(f"# TYPE {prefix}_service_degraded_served_total counter")
        lines.append(
            f"{prefix}_service_degraded_served_total "
            f"{_fmt(payload['degraded_served'])}"
        )

    breaker = payload.get("breaker")
    if breaker:
        lines.append(f"# TYPE {prefix}_breaker_state gauge")
        lines.append(
            f'{prefix}_breaker_state{{state="{breaker["state"]}"}} 1'
        )
        lines.append(f"# TYPE {prefix}_breaker_trips_total counter")
        lines.append(
            f"{prefix}_breaker_trips_total {_fmt(breaker['trips'])}"
        )

    tiers = payload.get("tiers")
    if tiers:
        lines.append(f"# TYPE {prefix}_service_tier_answers_total counter")
        for tier in sorted(tiers):
            lines.append(
                f'{prefix}_service_tier_answers_total{{tier="{tier}"}} '
                f"{_fmt(tiers[tier])}"
            )

    errors = payload.get("errors")
    if errors is not None:
        lines.append(f"# TYPE {prefix}_service_errors_total counter")
        for kind in sorted(errors):
            lines.append(
                f'{prefix}_service_errors_total{{kind="{kind}"}} '
                f"{_fmt(errors[kind])}"
            )

    counters = payload.get("counters") or {}
    for name in sorted(counters):
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(counters[name])}")

    histograms = payload.get("histograms") or {}
    for name in sorted(histograms):
        summary = histograms[name]
        metric = f"{prefix}_{_sanitize(name)}_seconds"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for upper, count in summary.get("buckets", ()):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_fmt(upper)}"}} {cumulative}'
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {summary["count"]}'
        )
        lines.append(f"{metric}_count {summary['count']}")
        lines.append(f"{metric}_sum {_fmt(summary['sum'])}")
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            value = summary.get(key)
            if value is not None:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} {_fmt(value)}'
                )

    drift = payload.get("drift")
    if drift:
        lines.append(f"# TYPE {prefix}_service_drift_watched gauge")
        lines.append(
            f"{prefix}_service_drift_watched {_fmt(drift['watched'])}"
        )

    occupancy = payload.get("flight_recorder")
    if occupancy:
        lines.append(f"# TYPE {prefix}_flight_recorder_occupancy gauge")
        for key in sorted(occupancy):
            lines.append(
                f'{prefix}_flight_recorder_occupancy{{ring="{key}"}} '
                f"{_fmt(occupancy[key])}"
            )

    pool = payload.get("fabric_pool")
    if pool:
        _flatten_gauges(f"{prefix}_fabric_pool", pool, lines)
    for name, block in sorted((payload.get("gauges") or {}).items()):
        _flatten_gauges(f"{prefix}_{_sanitize(name)}", block, lines)

    return "\n".join(lines) + "\n"
