#!/usr/bin/env sh
# Chaos-harness smoke: run the three seeded fault scenarios and prove the
# resilience report is bit-identical across runs (same seed -> same
# report, the chaos layer's reproducibility contract).  Pass --full to
# run the full-size workloads instead of --quick.
set -eu

cd "$(dirname "$0")/.."

MODE="--quick"
if [ "${1:-}" = "--full" ]; then
    MODE=""
fi

TMPDIR="${TMPDIR:-/tmp}"
A="$TMPDIR/chaos_smoke_a.$$"
B="$TMPDIR/chaos_smoke_b.$$"
trap 'rm -f "$A" "$B"' EXIT

for scenario in single-link-loss cascading-node-isolation flapping-uplink; do
    echo "== scenario: $scenario"
    PYTHONPATH=src python -m repro.cli.main --seed 7 chaos \
        --scenario "$scenario" $MODE
    echo
done

echo "== determinism: full report twice with seed 7"
PYTHONPATH=src python -m repro.cli.main --seed 7 chaos $MODE > "$A"
PYTHONPATH=src python -m repro.cli.main --seed 7 chaos $MODE > "$B"
if ! cmp -s "$A" "$B"; then
    echo "FAIL: chaos report is not bit-identical across runs" >&2
    diff "$A" "$B" >&2 || true
    exit 1
fi
echo "OK: report bit-identical across runs"
