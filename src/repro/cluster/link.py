"""The inter-host cable."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.units import US

__all__ = ["EthernetLink"]


@dataclass(frozen=True)
class EthernetLink:
    """A point-to-point Ethernet link between two hosts.

    Defaults describe the paper's testbed: 40 GbE back to back,
    ~0.005 ms RTT (§III-A), 9000-byte frames (Table III).  The usable
    payload rate accounts for Ethernet framing at the configured MTU.
    """

    raw_gbps: float = 40.0
    rtt_s: float = 5 * US
    frame_bytes: int = 9000

    def __post_init__(self) -> None:
        if self.raw_gbps <= 0:
            raise DeviceError(f"link rate must be positive, got {self.raw_gbps!r}")
        if self.rtt_s < 0:
            raise DeviceError(f"negative RTT: {self.rtt_s!r}")
        if self.frame_bytes < 576:
            raise DeviceError(f"implausible frame size {self.frame_bytes!r}")

    @property
    def payload_gbps(self) -> float:
        """Rate after per-frame overhead (preamble+header+FCS+IFG ~ 42 B)."""
        overhead = 42
        return self.raw_gbps * self.frame_bytes / (self.frame_bytes + overhead)

    def __str__(self) -> str:
        return (
            f"{self.raw_gbps:.0f} GbE, MTU {self.frame_bytes}, "
            f"RTT {self.rtt_s * 1e6:.1f} us"
        )
