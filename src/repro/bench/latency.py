"""Memory-latency benchmark (``lat_mem_rd`` style).

A dependent-load pointer chase over an array far larger than the LLC:
every access pays the full load-to-use latency of its (CPU node, memory
node) pair.  This is the measurement behind Table I's NUMA factors —
the analytic :func:`repro.analysis.numa_factor.numa_factor` computes the
model value; this benchmark *measures* it the way a tool would, noise
and all, so the two can be cross-checked.
"""

from __future__ import annotations

import numpy as np

from repro.bench.results import Measurement
from repro.errors import BenchmarkError
from repro.memory.allocator import PageAllocator
from repro.memory.policy import MemBinding
from repro.osmodel.noise import NoiseModel
from repro.rng import RngRegistry
from repro.topology.machine import Machine
from repro.units import MiB, NS

__all__ = ["LatencyBenchmark", "measured_numa_factor"]


class LatencyBenchmark:
    """Pointer-chase latency across NUMA bindings.

    Parameters
    ----------
    machine:
        Host under test.
    registry:
        Seeded RNG registry.
    runs:
        Repetitions per pair; the mean is reported (latency benchmarks
        average, unlike STREAM's max — jitter is part of the signal).
    array_bytes:
        Chase footprint; must dwarf the LLC or the chase stays cached.
    sigma:
        Per-run multiplicative noise.
    """

    def __init__(
        self,
        machine: Machine,
        registry: RngRegistry | None = None,
        runs: int = 25,
        array_bytes: int = 64 * MiB,
        sigma: float = 0.015,
    ) -> None:
        if runs < 1:
            raise BenchmarkError(f"runs must be >= 1, got {runs}")
        min_bytes = 4 * machine.params.llc_bytes
        if array_bytes < min_bytes:
            raise BenchmarkError(
                f"chase array must be >= 4x LLC = {min_bytes} bytes to defeat "
                f"caching, got {array_bytes}"
            )
        self.machine = machine
        self.registry = registry or RngRegistry()
        self.runs = runs
        self.array_bytes = array_bytes
        self.sigma = sigma

    def measure(self, cpu_node: int, mem_node: int) -> Measurement:
        """Load-to-use latency (in **nanoseconds**) for one binding."""
        allocator = PageAllocator(self.machine)
        allocation = allocator.allocate(
            self.array_bytes, cpu_node=cpu_node, binding=MemBinding.bind(mem_node)
        )
        try:
            base_ns = self.machine.pio_round_trip_s(cpu_node, mem_node) / NS
            noise = NoiseModel(
                self.registry.stream(f"latency/cpu{cpu_node}-mem{mem_node}")
            )
            samples = base_ns * noise.factors(self.sigma, self.runs)
            return Measurement.from_samples(samples, protocol="mean")
        finally:
            allocator.release(allocation)

    def matrix(self) -> np.ndarray:
        """All-pairs latency matrix in nanoseconds."""
        ids = self.machine.node_ids
        out = np.zeros((len(ids), len(ids)))
        for i, cpu in enumerate(ids):
            for j, mem in enumerate(ids):
                out[i, j] = self.measure(cpu, mem).value
        return out

    def numa_factor(self) -> float:
        """Measured NUMA factor: mean remote latency over mean local."""
        lat = self.matrix()
        n = lat.shape[0]
        if n < 2:
            raise BenchmarkError("NUMA factor needs >= 2 nodes")
        local = float(np.diag(lat).mean())
        remote = float(lat[~np.eye(n, dtype=bool)].mean())
        return remote / local


def measured_numa_factor(
    machine: Machine, registry: RngRegistry | None = None, runs: int = 10
) -> float:
    """Convenience wrapper: one measured NUMA factor for ``machine``."""
    return LatencyBenchmark(machine, registry=registry, runs=runs).numa_factor()
