"""FW2 — the paper's future work #2: locality vs resource contention.

§VI: "we will study more delicate issues such as ... tradeoffs between
data locality and resource contention."  The concurrent runner makes
the trade-off measurable: a NIC bulk send and an SSD ingest run
together, first with both jobs' buffers behind the same starved fabric
direction (locality to each other, contention on the link), then spread
across the write-model's class-2 nodes.
"""

from __future__ import annotations

from repro.bench.concurrent import ConcurrentRunner
from repro.bench.jobfile import FioJob
from repro.core.iomodel import IOModelBuilder
from repro.experiments.common import IO_NODE, check, default_machine, default_registry
from repro.experiments.registry import ExperimentResult

TITLE = "Future work: locality vs contention across concurrent devices"


def _jobs(nic_node: int, ssd_node: int) -> list[FioJob]:
    return [
        FioJob(name="nic-send", engine="rdma", rw="write", numjobs=4,
               cpunodebind=nic_node),
        FioJob(name="ssd-ingest", engine="libaio", rw="write", numjobs=4,
               cpunodebind=ssd_node),
    ]


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Naive co-located placement vs model-driven spreading."""
    m = default_machine(machine)
    registry = default_registry(registry)
    runner = ConcurrentRunner(m, registry)

    naive = runner.run(_jobs(2, 2))
    model = IOModelBuilder(m, registry=registry, runs=5 if quick else 50).build(
        IO_NODE, "write"
    )
    class2 = model.class_by_rank(2).node_ids
    placed = runner.run(_jobs(class2[0], class2[-1]))

    link_cap = m.link(2, 7).dma_gbps
    gain = placed.total_gbps / naive.total_gbps - 1

    checks = (
        check(
            "co-located jobs collapse onto the shared 2->7 direction",
            naive.total_gbps <= link_cap * 1.02,
            f"total {naive.total_gbps:.1f} Gbps vs link {link_cap:.1f} Gbps",
        ),
        check(
            "counters identify the bottleneck (2->7 ~ 100 % utilised)",
            naive.counters.utilization("link-dma:2>7") > 0.95,
            f"{100 * naive.counters.utilization('link-dma:2>7'):.1f} %",
        ),
        check(
            "model-driven spreading nearly doubles throughput (>70 %)",
            gain > 0.70,
            f"{naive.total_gbps:.1f} -> {placed.total_gbps:.1f} Gbps "
            f"(+{100 * gain:.0f} %)",
        ),
        check(
            "spread placement leaves the fabric unsaturated "
            "(devices, not links, become the bottleneck)",
            all(
                util <= 0.95
                for res, util in placed.counters.hottest(20)
                if not res.startswith("dev:")
            ),
        ),
    )
    text = "\n\n".join(
        [
            "naive (both jobs' buffers on node 2):\n" + naive.render(),
            f"model-driven (class-2 nodes {class2[0]} and {class2[-1]}):\n"
            + placed.render(),
        ]
    )
    return ExperimentResult(
        exp_id="fw2", title=TITLE, text=text,
        data={"naive": naive.total_gbps, "placed": placed.total_gbps,
              "gain": gain},
        checks=checks,
    )
