"""Shared fixtures.

The reference host is immutable after construction and the RNG registry
is stateless, so both are session-scoped; anything that mutates state
(allocators, schedulers, runners with shared allocators) is built fresh
per test.
"""

from __future__ import annotations

import pytest

from repro.bench.fio import FioRunner
from repro.rng import RngRegistry
from repro.topology.builders import magny_cours_4p, parametric_machine, reference_host


@pytest.fixture(scope="session")
def host():
    """The calibrated reference host with devices attached."""
    return reference_host()


@pytest.fixture(scope="session")
def bare_host():
    """The reference host without devices (pure fabric tests)."""
    return reference_host(with_devices=False)


@pytest.fixture(scope="session")
def variant_a():
    """A clean Fig. 1 variant-a machine (no calibrated asymmetries)."""
    return magny_cours_4p("a")


@pytest.fixture(scope="session")
def small_machine():
    """A small 2-package machine for cheap structural tests."""
    return parametric_machine(2, nodes_per_package=2, cores_per_node=2)


@pytest.fixture()
def registry():
    """A fresh registry with the default seed."""
    return RngRegistry()


@pytest.fixture()
def runner(host):
    """A fio runner against the reference host."""
    return FioRunner(host)
