"""Cross-module pipelines a downstream user would run."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob, parse_jobfile
from repro.core.characterize import HostCharacterizer
from repro.core.predictor import MixturePredictor
from repro.core.scheduler_advisor import PlacementAdvisor
from repro.core.validation import validate_model
from repro.rng import RngRegistry
from repro.topology.builders import parametric_machine, reference_host


class TestCharacterizeThenSchedule:
    """The paper's intended workflow: model once, then place tasks."""

    def test_full_pipeline(self):
        machine = reference_host()
        registry = RngRegistry()
        characterizer = HostCharacterizer(machine, registry=registry, runs=10)
        result = characterizer.characterize(7)

        runner = FioRunner(machine, registry=registry)
        job = FioJob(name="e2e", engine="rdma", rw="write", numjobs=4)
        sweep = {
            node: runner.run(job.with_node(node)).aggregate_gbps
            for node in machine.node_ids
        }

        # Validate, predict, advise — all from the same model object.
        reports = validate_model(result.write_model, {"RDMA_WRITE": sweep})
        assert reports["RDMA_WRITE"].ordering_holds

        predictor = MixturePredictor(result.write_model, sweep)
        predicted = predictor.predict_streams([6, 0, 0, 2])
        assert 0 < predicted < 32

        advisor = PlacementAdvisor(machine, result.write_model, sweep)
        plan = advisor.advise(8)
        measured = runner.run(
            FioJob(name="e2e-plan", engine="rdma", rw="write", numjobs=8,
                   stream_nodes=tuple(plan.stream_nodes()))
        )
        assert measured.aggregate_gbps > 20.0


class TestJobfileToResults:
    def test_paper_protocol_jobfile(self, host):
        text = """
        [global]
        bs=128k
        size=400g
        numjobs=4

        [tcp-send-n5]
        ioengine=tcp
        rw=send
        cpunodebind=5

        [ssd-read-n2]
        ioengine=libaio
        rw=read
        iodepth=16
        cpunodebind=2
        """
        runner = FioRunner(host)
        results = runner.run_jobs(parse_jobfile(text))
        by_name = {r.job_name: r for r in results}
        assert by_name["tcp-send-n5"].aggregate_gbps == pytest.approx(20.4, rel=0.1)
        assert by_name["ssd-read-n2"].aggregate_gbps == pytest.approx(34.7, rel=0.1)


class TestForeignMachine:
    """The methodology must run on machines it was never calibrated for."""

    def test_characterize_parametric_ring(self):
        machine = parametric_machine(4, nodes_per_package=2, cores_per_node=2)
        characterizer = HostCharacterizer(machine, registry=RngRegistry(), runs=5)
        result = characterizer.characterize(0)
        assert result.write_model.n_classes >= 1
        assert result.read_model.n_classes >= 1
        # Local + neighbour rule holds everywhere.
        assert 0 in result.write_model.class_by_rank(1).node_ids
        assert 1 in result.write_model.class_by_rank(1).node_ids

    def test_uniform_ring_yields_few_classes(self):
        machine = parametric_machine(3, nodes_per_package=1, cores_per_node=2)
        characterizer = HostCharacterizer(machine, registry=RngRegistry(), runs=5)
        result = characterizer.characterize(0)
        # A symmetric ring has no remote diversity: at most 2 classes.
        assert result.write_model.n_classes <= 2
