"""Property-based equivalence of the incremental solver.

The memoized/vectorized :class:`repro.solver.incremental.AllocationCache`
must be an observationally exact replacement for a cold
:func:`repro.flows.maxmin.maxmin_allocate` call: same rates (within
1e-9) on any problem, whether the answer is solved cold, served from the
signature-multiset cache, or re-keyed after a capacity change.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.flow import Flow
from repro.flows.maxmin import maxmin_allocate
from repro.solver.incremental import AllocationCache, flow_signature

RESOURCES = ["r0", "r1", "r2", "r3", "r4"]

TOL = 1e-9


@st.composite
def problems(draw):
    n_resources = draw(st.integers(min_value=1, max_value=5))
    names = RESOURCES[:n_resources]
    caps = {
        r: draw(st.floats(min_value=0.5, max_value=100.0,
                          allow_nan=False, allow_infinity=False))
        for r in names
    }
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flows = []
    for i in range(n_flows):
        subset = draw(
            st.sets(st.sampled_from(names), min_size=1, max_size=n_resources)
        )
        demand = draw(
            st.one_of(
                st.just(math.inf),
                st.floats(min_value=0.1, max_value=50.0,
                          allow_nan=False, allow_infinity=False),
            )
        )
        weight = draw(st.floats(min_value=0.25, max_value=4.0,
                                allow_nan=False, allow_infinity=False))
        flows.append(
            Flow(name=f"f{i}", resources=tuple(sorted(subset)),
                 demand_gbps=demand, weight=weight)
        )
    # Duplicated signatures exercise the group-collapse path.
    if draw(st.booleans()) and flows:
        twin = flows[0]
        flows.append(
            Flow(name="twin", resources=twin.resources,
                 demand_gbps=twin.demand_gbps, weight=twin.weight)
        )
    return flows, caps


@given(problems())
@settings(max_examples=300, deadline=None)
def test_cold_solve_matches_maxmin(problem):
    flows, caps = problem
    expected = maxmin_allocate(flows, caps)
    actual = AllocationCache().rates(flows, caps)
    assert set(actual) == set(expected)
    for name in expected:
        assert actual[name] == expected[name] or (
            abs(actual[name] - expected[name]) <= TOL
        ), name


@given(problems())
@settings(max_examples=200, deadline=None)
def test_cached_solve_matches_maxmin(problem):
    """The second lookup (a cache hit) must return the same rates."""
    flows, caps = problem
    expected = maxmin_allocate(flows, caps)
    cache = AllocationCache()
    cache.rates(flows, caps)  # warm
    cached = cache.rates(flows, caps)
    for name in expected:
        assert abs(cached[name] - expected[name]) <= TOL, name


@given(problems())
@settings(max_examples=200, deadline=None)
def test_renamed_flows_reuse_cached_rates_correctly(problem):
    """A cache hit keyed on the signature multiset must hand the right
    rate to each flow even when names and ordering differ."""
    flows, caps = problem
    cache = AllocationCache()
    cache.rates(flows, caps)  # warm with the original names
    renamed = [
        Flow(name=f"alias-{i}", resources=f.resources,
             demand_gbps=f.demand_gbps, weight=f.weight)
        for i, f in enumerate(reversed(flows))
    ]
    actual = cache.rates(renamed, caps)
    expected = maxmin_allocate(renamed, caps)
    for name in expected:
        assert abs(actual[name] - expected[name]) <= TOL, name


@given(problems(), st.floats(min_value=0.5, max_value=2.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_capacity_change_is_not_served_stale(problem, scale):
    """Scaling a capacity changes the cache key, so the answer tracks the
    new capacities instead of replaying the old allocation."""
    flows, caps = problem
    cache = AllocationCache()
    cache.rates(flows, caps)  # warm at the original capacities
    scaled_caps = {r: c * scale for r, c in caps.items()}
    actual = cache.rates(flows, scaled_caps)
    expected = maxmin_allocate(flows, scaled_caps)
    for name in expected:
        assert abs(actual[name] - expected[name]) <= TOL, name


@given(problems())
@settings(max_examples=100, deadline=None)
def test_identical_signatures_get_identical_rates(problem):
    """The memoization premise itself: equal signatures, equal rates."""
    flows, caps = problem
    rates = AllocationCache().rates(flows, caps)
    by_signature = {}
    for f in flows:
        by_signature.setdefault(flow_signature(f), []).append(rates[f.name])
    for values in by_signature.values():
        assert max(values) - min(values) <= TOL
