"""CPU scheduler placement."""

import pytest

from repro.errors import AffinityError
from repro.osmodel.process import SimTask, TaskBinding
from repro.osmodel.scheduler import CpuScheduler


class TestPlacement:
    def test_bound_task_lands_on_node(self, host):
        sched = CpuScheduler(host)
        task = sched.place(SimTask(name="t", binding=TaskBinding.on_node(5)))
        assert sched.node_of("t") == 5
        assert len(task.cores) == 1

    def test_threads_get_distinct_cores(self, host):
        sched = CpuScheduler(host)
        task = sched.place(SimTask(name="t", threads=4,
                                   binding=TaskBinding.on_node(2)))
        assert len(set(task.cores)) == 4

    def test_unbound_goes_to_least_loaded(self, host):
        sched = CpuScheduler(host)
        sched.place(SimTask(name="busy", threads=4, binding=TaskBinding.on_node(0)))
        task = sched.place(SimTask(name="t"))
        assert sched.node_of("t") == 1  # lowest id among empty nodes

    def test_node_capacity_enforced(self, host):
        sched = CpuScheduler(host)
        sched.place(SimTask(name="a", threads=4, binding=TaskBinding.on_node(3)))
        with pytest.raises(AffinityError):
            sched.place(SimTask(name="b", threads=1, binding=TaskBinding.on_node(3)))

    def test_oversubscription_when_allowed(self, host):
        sched = CpuScheduler(host, allow_oversubscribe=True)
        sched.place(SimTask(name="a", threads=4, binding=TaskBinding.on_node(3)))
        task = sched.place(SimTask(name="b", threads=2, binding=TaskBinding.on_node(3)))
        assert len(task.cores) == 2

    def test_duplicate_name_rejected(self, host):
        sched = CpuScheduler(host)
        sched.place(SimTask(name="t"))
        with pytest.raises(AffinityError):
            sched.place(SimTask(name="t"))

    def test_unknown_node_rejected(self, host):
        sched = CpuScheduler(host)
        with pytest.raises(AffinityError):
            sched.place(SimTask(name="t", binding=TaskBinding.on_node(42)))


class TestRemoval:
    def test_remove_frees_cores(self, host):
        sched = CpuScheduler(host)
        sched.place(SimTask(name="t", threads=4, binding=TaskBinding.on_node(3)))
        assert sched.load(3) == 4
        sched.remove("t")
        assert sched.load(3) == 0
        sched.place(SimTask(name="u", threads=4, binding=TaskBinding.on_node(3)))

    def test_remove_unknown_rejected(self, host):
        with pytest.raises(AffinityError):
            CpuScheduler(host).remove("ghost")

    def test_node_of_unscheduled_rejected(self, host):
        with pytest.raises(AffinityError):
            CpuScheduler(host).node_of("ghost")
