"""The crash-consistent execution journal: append-only, per-record CRC.

A :class:`RunJournal` is the checkpoint store of one interruptible run
(``experiment all --resume DIR``, ``iomodel --resume DIR``, ``chaos
--resume DIR``).  The file format is deliberately dumb:

* a 6-byte magic (``RPJL`` + format version + newline),
* then records, each ``[u32 length][u32 crc32(payload)][payload]``
  little-endian, the payload being a pickled plain-data object.

Record 0 is the **run metadata** (command, machine, seed, targets, …);
every later record is one completed *unit* of work — a shard's results
plus its RNG draw ledger and captured telemetry.  Appends are flushed
and fsynced one record at a time, so after ``kill -9`` the file is a
valid journal with at most one *torn tail*: a final record whose bytes
were cut short.  :func:`scan_journal` classifies every failure mode:

* torn tail (header or payload shorter than declared, or a cut magic)
  → the complete prefix is returned and resume truncates the tail;
* CRC mismatch or an unpicklable payload on a *complete* record →
  :class:`~repro.errors.JournalError` naming the record index — real
  corruption is never silently dropped and never yields wrong results;
* wrong magic → :class:`~repro.errors.JournalError` (not a journal).

Crash points for the recovery soak are injected here: the environment
variable named by :data:`CRASH_ENV` (see
:mod:`repro.faults.execution`) makes :meth:`RunJournal.append` SIGKILL
the process after — or, in torn mode, halfway through — the Nth data
record, which is how ``repro-numa recover`` produces deterministic
kill-anywhere coverage without timing races.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import signal
import struct
import zlib

from repro.errors import JournalError

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_FILENAME",
    "CRASH_ENV",
    "scan_journal",
    "RunJournal",
]

#: File magic: identifies a run journal and pins the record format.
JOURNAL_MAGIC = b"RPJL\x01\n"

#: The journal's filename inside a run directory.
JOURNAL_FILENAME = "journal.bin"

#: Environment variable carrying an injected crash point
#: (``"<n>"`` = SIGKILL after the n-th data append, ``"<n>:torn"`` =
#: SIGKILL halfway through it, leaving a torn tail).
CRASH_ENV = "REPRO_JOURNAL_CRASH"

_HEADER = struct.Struct("<II")

#: Pickle protocol pinned so journals are readable across minor Python
#: bumps within one machine's lifetime.
_PICKLE_PROTOCOL = 4


def _record_bytes(payload_obj) -> bytes:
    payload = pickle.dumps(payload_obj, protocol=_PICKLE_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_journal(path) -> "tuple[list, int, bool]":
    """Parse the journal at ``path``.

    Returns ``(records, good_end, torn)``: the complete records in
    append order, the byte offset just past the last complete record,
    and whether a torn tail follows it.  Raises
    :class:`~repro.errors.JournalError` on real corruption (a complete
    record whose CRC or payload is bad), naming the record index.
    """
    data = pathlib.Path(path).read_bytes()
    if len(data) < len(JOURNAL_MAGIC):
        # A crash during creation can leave a cut magic; treat the
        # whole file as a torn tail and start over.
        return [], 0, bool(data)
    if data[: len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
        raise JournalError(f"{path} is not a run journal (bad magic)")
    records: list = []
    offset = len(JOURNAL_MAGIC)
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return records, offset, True  # torn header
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if start + length > len(data):
            return records, offset, True  # torn payload
        payload = data[start : start + length]
        index = len(records)
        if zlib.crc32(payload) != crc:
            raise JournalError(
                f"{path}: record {index} is corrupt "
                f"(crc 0x{zlib.crc32(payload):08x} != stored 0x{crc:08x})"
            )
        try:
            records.append(pickle.loads(payload))
        except Exception as exc:
            raise JournalError(
                f"{path}: record {index} passed its checksum but does not "
                f"deserialize ({type(exc).__name__}: {exc})"
            ) from exc
        offset = start + length
    return records, offset, False


def _meta_mismatch(stored: dict, current: dict) -> "list[str]":
    keys = sorted(set(stored) | set(current))
    return [
        f"{key}: journal has {stored.get(key)!r}, run has {current.get(key)!r}"
        for key in keys
        if stored.get(key) != current.get(key)
    ]


class RunJournal:
    """Checkpoint store for one resumable run (create or resume).

    Parameters
    ----------
    run_dir:
        Directory holding ``journal.bin`` (created if missing).
    meta:
        Plain-data identity of the run: everything that determines its
        results (command, machine, seed, targets, mode, …).  Resuming
        with different metadata raises — a journal can only continue
        the run that wrote it.

    Completed units are exposed via :meth:`get`/:attr:`completed`; new
    completions are persisted with :meth:`append` (one fsynced record
    each, so a crash between appends loses at most the in-flight unit).
    """

    def __init__(self, run_dir, meta: dict) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / JOURNAL_FILENAME
        self.meta = dict(meta)
        self.resumed_units = 0
        self.truncated_tail = False
        self._completed: dict = {}
        self._appends = 0
        self._crash_spec = self._parse_crash_spec(os.environ.get(CRASH_ENV))
        if self.path.exists():
            records, good_end, torn = scan_journal(self.path)
            if records and _meta_mismatch(records[0], self.meta):
                problems = "; ".join(_meta_mismatch(records[0], self.meta))
                raise JournalError(
                    f"{self.path} belongs to a different run: {problems}"
                )
            self._handle = open(self.path, "r+b")
            if torn:
                self.truncated_tail = True
                self._handle.truncate(good_end)
            self._handle.seek(0, os.SEEK_END)
            if not records:  # cut magic / torn meta record: start over
                self._handle.truncate(0)
                self._handle.seek(0)  # truncate() does not move the cursor
                self._write(JOURNAL_MAGIC + _record_bytes(self.meta))
            for record in records[1:]:
                self._completed[record["key"]] = record
            self.resumed_units = len(self._completed)
        else:
            self._handle = open(self.path, "w+b")
            self._write(JOURNAL_MAGIC + _record_bytes(self.meta))

    # --- reads ------------------------------------------------------------
    @property
    def completed(self) -> dict:
        """Unit key -> journal record, for every completed unit."""
        return dict(self._completed)

    def get(self, key):
        """The journal record for unit ``key``, or ``None``."""
        return self._completed.get(key)

    def __contains__(self, key) -> bool:
        return key in self._completed

    def __len__(self) -> int:
        return len(self._completed)

    # --- writes -----------------------------------------------------------
    def _write(self, data: bytes) -> None:
        self._handle.write(data)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    @staticmethod
    def _parse_crash_spec(raw: "str | None") -> "tuple[int, bool] | None":
        if not raw:
            return None
        torn = raw.endswith(":torn")
        number = raw[: -len(":torn")] if torn else raw
        try:
            return int(number), torn
        except ValueError:
            raise JournalError(
                f"cannot parse {CRASH_ENV}={raw!r} (want '<n>' or '<n>:torn')"
            ) from None

    def append(self, key, **payload) -> dict:
        """Persist one completed unit: ``key`` plus its payload fields.

        The record is written, flushed, and fsynced before this
        returns, so a crash after :meth:`append` never loses the unit.
        An injected crash point (:data:`CRASH_ENV`) fires here.
        """
        if key in self._completed:
            raise JournalError(f"unit {key!r} is already journaled")
        record = {"key": key, **payload}
        data = _record_bytes(record)
        self._appends += 1
        if self._crash_spec is not None and self._appends == self._crash_spec[0]:
            if self._crash_spec[1]:  # torn write: half the record, then die
                self._write(data[: max(_HEADER.size + 1, len(data) // 2)])
            else:
                self._write(data)
            os.kill(os.getpid(), signal.SIGKILL)
        self._write(data)
        self._completed[key] = record
        return record

    # --- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunJournal({str(self.path)!r}, {len(self._completed)} units, "
            f"resumed={self.resumed_units})"
        )
