"""T4 — Table IV: device-write model validated against TCP/RDMA/SSD."""


def test_table4_write_model(run_paper_experiment):
    result = run_paper_experiment("t4")
    assert set(result.data["measurements"]) == {
        "TCP sender", "RDMA_WRITE", "SSD write"
    }
