"""Routing-table construction.

The table answers ``route(plane, src, dst) -> node sequence``.  Routes
come from two sources, in priority order:

1. explicit overrides installed with :meth:`RoutingTable.set_route`
   (machines whose BIOS programs unusual routing registers);
2. the deterministic heuristic of :func:`select_route`: minimal hop
   count, then the plane preference, then lexicographic order.

Routing is static — computed once per (plane, src, dst) and cached —
matching how HT routing registers actually work (no adaptive routing on
these platforms).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.errors import RoutingError, TopologyError
from repro.interconnect.link import DirectedLink
from repro.interconnect.planes import PLANE_DMA, PLANE_PIO, Plane, validate_plane
from repro.obs import recorder as _obs
from repro.routing.batch import batch_routes
from repro.routing.incremental import (
    RerouteStats,
    incremental_routes,
    route_usage,
)

__all__ = ["RoutingTable", "enumerate_min_hop_routes", "select_route"]

LinkMap = Mapping[tuple[int, int], DirectedLink]


def _adjacency(links: LinkMap) -> dict[int, list[int]]:
    adj: dict[int, list[int]] = {}
    for src, dst in links:
        adj.setdefault(src, []).append(dst)
        adj.setdefault(dst, [])
    for neighbours in adj.values():
        neighbours.sort()
    return adj


def enumerate_min_hop_routes(
    links: LinkMap, src: int, dst: int, adj: dict[int, list[int]] | None = None
) -> list[tuple[int, ...]]:
    """All directed routes from ``src`` to ``dst`` with minimal hop count.

    Uses a BFS distance labelling followed by a predecessor walk.  The
    result is sorted lexicographically, so callers that pick the first
    element of a filtered subset stay deterministic.  Callers holding a
    cached adjacency map (:attr:`RoutingTable.adjacency`) pass it as
    ``adj`` to skip the rebuild.

    Raises
    ------
    RoutingError
        If ``dst`` is unreachable from ``src``.
    """
    if src == dst:
        return [(src,)]
    if adj is None:
        adj = _adjacency(links)
    if src not in adj or dst not in adj:
        raise RoutingError(f"unknown endpoint in route request {src}->{dst}")

    dist = {src: 0}
    queue = deque([src])
    while queue:
        here = queue.popleft()
        for nxt in adj[here]:
            if nxt not in dist:
                dist[nxt] = dist[here] + 1
                queue.append(nxt)
    if dst not in dist:
        raise RoutingError(f"no route from node {src} to node {dst}")

    routes: list[tuple[int, ...]] = []

    def walk(prefix: list[int]) -> None:
        here = prefix[-1]
        if here == dst:
            routes.append(tuple(prefix))
            return
        for nxt in adj[here]:
            if dist.get(nxt) == len(prefix):  # strictly forward in BFS layers
                walk(prefix + [nxt])

    walk([src])
    routes.sort()
    return routes


def _route_links(
    links: LinkMap, hops: Sequence[int]
) -> tuple[DirectedLink, ...]:
    out = []
    for a, b in zip(hops, hops[1:]):
        try:
            out.append(links[(a, b)])
        except KeyError as exc:
            raise RoutingError(f"route {hops} uses missing link {a}->{b}") from exc
    return tuple(out)


def select_route(
    links: LinkMap, plane: Plane, src: int, dst: int,
    adj: dict[int, list[int]] | None = None,
) -> tuple[int, ...]:
    """Pick the route a static routing register would hold.

    Selection: minimal hop count, then

    * ``PLANE_DMA``: widest bulk bottleneck (max of min ``dma_gbps``);
    * ``PLANE_PIO``: widest streaming bottleneck (max of min
      ``pio_gbps``), then lowest one-way latency;

    finally lexicographically smallest node sequence.
    """
    validate_plane(plane)
    candidates = enumerate_min_hop_routes(links, src, dst, adj=adj)
    if len(candidates) == 1:
        return candidates[0]

    def score(hops: tuple[int, ...]) -> tuple:
        route_links = _route_links(links, hops)
        if plane == PLANE_DMA:
            bottleneck = min(l.dma_gbps for l in route_links)
            # Negative for max; hops for lexicographic tie-break.
            return (-bottleneck, hops)
        bottleneck = min(l.pio_gbps for l in route_links)
        latency = sum(l.pio_latency_s for l in route_links)
        return (-bottleneck, latency, hops)

    return min(candidates, key=score)


class RoutingTable:
    """Cached per-plane routes over one machine's link map.

    Parameters
    ----------
    links:
        The machine's directed link map.  The table holds a reference; it
        must not be mutated after routing begins (builders finish the link
        set before touching routes).
    """

    def __init__(self, links: LinkMap) -> None:
        self._links = links
        self._overrides: dict[tuple[Plane, int, int], tuple[int, ...]] = {}
        self._cache: dict[tuple[Plane, int, int], tuple[int, ...]] = {}
        self._adj: dict[int, list[int]] | None = None
        self._populated: set[Plane] = set()
        # Derive-time caches, built lazily by the first derive() and
        # dropped whenever the cached routes change: the per-plane
        # pair-keyed route view and its usage index (link ends -> pairs
        # whose selected route crosses it).
        self._plane_routes: dict[
            Plane, dict[tuple[int, int], tuple[int, ...]]
        ] = {}
        self._usage: dict[Plane, dict[tuple[int, int], list[tuple[int, int]]]] = {}
        #: Per-plane :class:`~repro.routing.incremental.RerouteStats`
        #: when this table was built by :meth:`derive`; empty otherwise.
        self.last_reroute: dict[Plane, RerouteStats] = {}

    @property
    def populated_planes(self) -> tuple[Plane, ...]:
        """Planes whose all-pairs routes are fully cached."""
        return tuple(sorted(self._populated))

    @property
    def adjacency(self) -> dict[int, list[int]]:
        """The link map's adjacency structure, built once and cached.

        The link map is immutable once routing begins (see the class
        docstring), so the adjacency never needs invalidation.
        """
        if self._adj is None:
            self._adj = _adjacency(self._links)
        return self._adj

    def populate(
        self, plane: Plane, nodes: Iterable[int] | None = None, strict: bool = True
    ) -> None:
        """Batch-compute every pair's route for ``plane`` in one pass.

        One BFS per source node plus a dynamic program over the BFS
        layer DAG (:mod:`repro.routing.batch`) fills the route cache
        with answers bit-identical to :func:`select_route`; explicit
        overrides installed with :meth:`set_route` still win on lookup.

        Parameters
        ----------
        plane:
            Traffic plane to populate.
        nodes:
            Endpoints to cover (default: every node with a link).
        strict:
            When true, a pair with no route — a partitioned fabric —
            raises :class:`~repro.errors.RoutingError` naming the pair;
            when false such pairs are left uncached and per-pair lookups
            keep raising lazily, as before.
        """
        validate_plane(plane)
        with _obs.span("routing.populate", plane=plane):
            routes = batch_routes(
                self._links, plane, nodes=nodes, adj=self.adjacency, strict=strict
            )
        _obs.count("routing.populates")
        for (src, dst), hops in routes.items():
            key = (plane, src, dst)
            if key not in self._overrides:
                self._cache[key] = hops
        self._plane_routes.pop(plane, None)
        self._usage.pop(plane, None)
        if nodes is None:
            self._populated.add(plane)

    def derive(self, links: LinkMap) -> "RoutingTable":
        """A table over ``links``, re-routed incrementally from this one.

        For every fully populated plane the new table's cache is filled
        through :func:`~repro.routing.incremental.incremental_routes`:
        only sources whose selected routes a removed/worsened link
        actually crossed — or that an added/improved link could newly
        serve — re-run BFS + Pareto-DP; everything else is carried over
        verbatim.  The result is bit-identical to constructing a fresh
        table and populating it non-strict, so lookups on partitioned
        pairs keep raising :class:`~repro.errors.RoutingError` lazily.

        Partially cached planes (never fully populated) start empty and
        re-populate lazily, as a fresh table would.  Explicit overrides
        are carried over when every link they use still exists (exactly
        the overrides :meth:`set_route` would accept on the new map);
        the rest are dropped.

        The per-plane :class:`~repro.routing.incremental.RerouteStats`
        land on the new table's :attr:`last_reroute` — the self-healing
        control plane reads the touched nodes from there.
        """
        table = RoutingTable(links)
        for plane in self.populated_planes:
            old_routes = self._plane_routes.get(plane)
            if old_routes is None:
                old_routes = {
                    (src, dst): hops
                    for (cached_plane, src, dst), hops in self._cache.items()
                    if cached_plane == plane
                }
                self._plane_routes[plane] = old_routes
            usage = self._usage.get(plane)
            if usage is None:
                usage = route_usage(old_routes)
                self._usage[plane] = usage
            routes, stats = incremental_routes(
                self._links, links, plane, old_routes,
                new_adj=table.adjacency, usage=usage,
            )
            cache = table._cache
            for (src, dst), hops in routes.items():
                cache[(plane, src, dst)] = hops
            table._populated.add(plane)
            table.last_reroute[plane] = stats
        for key, hops in self._overrides.items():
            try:
                _route_links(links, hops)
            except RoutingError:
                continue
            table._overrides[key] = hops
            table._cache.pop(key, None)
        return table

    def set_route(self, plane: Plane, hops: Iterable[int]) -> None:
        """Install an explicit route (overrides the heuristic).

        ``hops`` must be the full node sequence; every consecutive pair
        must be an existing directed link.
        """
        validate_plane(plane)
        hop_seq = tuple(hops)
        if len(hop_seq) < 2:
            raise TopologyError(f"an explicit route needs >= 2 hops, got {hop_seq!r}")
        _route_links(self._links, hop_seq)  # validates links exist
        key = (plane, hop_seq[0], hop_seq[-1])
        self._overrides[key] = hop_seq
        self._cache.pop(key, None)
        self._plane_routes.pop(plane, None)
        self._usage.pop(plane, None)

    def route(self, plane: Plane, src: int, dst: int) -> tuple[int, ...]:
        """The node sequence traffic takes from ``src`` to ``dst``.

        The first lookup on a plane batch-populates every pair's route
        (non-strict, so partitioned fabrics still fail lazily per pair);
        later lookups are dictionary hits.
        """
        validate_plane(plane)
        key = (plane, src, dst)
        hit = self._overrides.get(key)
        if hit is not None:
            _obs.count("routing.route.cached")
            return hit
        hit = self._cache.get(key)
        if hit is None:
            if plane not in self._populated:
                self.populate(plane, strict=False)
                hit = self._cache.get(key)
            if hit is None:
                # Unknown or unreachable endpoints: the per-pair path
                # raises the precise RoutingError for this pair.
                with _obs.span("routing.select", plane=plane, src=src, dst=dst):
                    hit = select_route(
                        self._links, plane, src, dst, adj=self.adjacency
                    )
                self._cache[key] = hit
            _obs.count("routing.route.computed")
        else:
            _obs.count("routing.route.cached")
        return hit

    def route_links(self, plane: Plane, src: int, dst: int) -> tuple[DirectedLink, ...]:
        """The directed links along :meth:`route`."""
        return _route_links(self._links, self.route(plane, src, dst))
