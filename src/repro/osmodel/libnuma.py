"""``libnuma``-shaped runtime API.

Thin functional wrappers whose names mirror the libnuma calls the
paper's Algorithm 1 is written against (``numa_num_configured_nodes``,
``numa_alloc_onnode``, ``numa_run_on_node``...), so the core
characterization code reads like the paper's pseudocode.
"""

from __future__ import annotations

from repro.errors import AffinityError
from repro.memory.allocator import Allocation, PageAllocator
from repro.memory.policy import MemBinding
from repro.topology.machine import Machine

__all__ = [
    "numa_num_configured_nodes",
    "numa_num_configured_cpus",
    "numa_node_of_cpu",
    "numa_alloc_onnode",
    "numa_free",
    "numa_run_on_node",
    "numa_distance_ok",
]


def numa_num_configured_nodes(machine: Machine) -> int:
    """Number of configured NUMA nodes (Algorithm 1, line 1)."""
    return machine.n_nodes


def numa_num_configured_cpus(machine: Machine) -> int:
    """Total configured CPUs (Algorithm 1, line 2 numerator)."""
    return machine.n_cores


def numa_node_of_cpu(machine: Machine, cpu: int) -> int:
    """Home node of a CPU id."""
    for nid in machine.node_ids:
        if any(c.core_id == cpu for c in machine.node(nid).cores):
            return nid
    raise AffinityError(f"no such cpu {cpu}")


def numa_alloc_onnode(
    allocator: PageAllocator, size_bytes: int, node: int
) -> Allocation:
    """``numa_alloc_onnode``: hard allocation on one node."""
    return allocator.allocate(size_bytes, cpu_node=node, binding=MemBinding.bind(node))


def numa_free(allocator: PageAllocator, allocation: Allocation) -> None:
    """Release an allocation."""
    allocator.release(allocation)


def numa_run_on_node(machine: Machine, node: int) -> int:
    """Validate-and-return a run-on-node request."""
    if node not in machine.node_ids:
        raise AffinityError(f"numa_run_on_node: unknown node {node}")
    return node


def numa_distance_ok(machine: Machine, a: int, b: int) -> bool:
    """True when both endpoints exist (libnuma's distance precondition)."""
    return a in machine.node_ids and b in machine.node_ids
