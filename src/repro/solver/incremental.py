"""Memoized, vectorized max-min allocation.

Two observations make the simulation hot path cheap:

1. **Flows with equal signatures get equal rates.**  Progressive filling
   treats two flows identically when they share (resource set, demand,
   weight); only the multiset of signatures matters.  Cold solves
   therefore run over *signature groups* — 16 identical copy threads are
   one group — with a vectorized numpy water-filling loop.
2. **Active sets recur.**  A piecewise-constant simulation revisits the
   same active multiset over and over (staggered identical flows cycle
   through the same population counts), and characterization sweeps
   re-pose the same allocation problem per sample.  Results are memoized
   by (signature multiset, used-capacity items) in an LRU map.

The semantics are *identical* to :func:`repro.flows.maxmin.maxmin_allocate`
(the property suite asserts agreement within 1e-9); this module only
changes the cost of getting the answer.

Imports are deliberately minimal (numpy + the error hierarchy) so
:mod:`repro.flows.network` can depend on this module without cycles.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SimulationError

__all__ = ["AllocationCache", "flow_signature"]

_EPS = 1e-12


_SIGNATURE_ATTR = "_solver_signature"


def flow_signature(flow) -> tuple:
    """Canonical allocation identity of a flow.

    Two flows with equal signatures are interchangeable to the max-min
    solver and always receive identical rates, so caches key on the
    multiset of signatures rather than on flow names.  Flows are records
    (never mutated after construction), so the signature is cached on
    the flow object — a simulation touching the same flow at every event
    pays the sort once.
    """
    sig = getattr(flow, _SIGNATURE_ATTR, None)
    if sig is None:
        sig = (
            tuple(sorted(flow.resources)),
            float(flow.demand_gbps),
            float(flow.weight),
        )
        try:
            setattr(flow, _SIGNATURE_ATTR, sig)
        except AttributeError:  # pragma: no cover - slotted flow types
            pass
    return sig


class AllocationCache:
    """Max-min fair rates with multiset memoization.

    Parameters
    ----------
    maxsize:
        LRU bound on memoized allocation problems.
    stats:
        Optional :class:`~repro.solver.stats.SolverStats` to count
        solves and cache hits/misses into.
    """

    def __init__(self, maxsize: int = 4096, stats=None) -> None:
        if maxsize < 1:
            raise SimulationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = stats
        self._memo: OrderedDict[tuple, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._memo)

    def clear(self) -> None:
        """Drop every memoized allocation."""
        self._memo.clear()

    def rates(
        self, flows: Iterable, capacities: Mapping[str, float]
    ) -> dict[str, float]:
        """Weighted max-min rates, same contract as ``maxmin_allocate``."""
        flow_list = list(flows)
        names = [f.name for f in flow_list]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate flow names in allocation: {sorted(names)}")
        for f in flow_list:
            for r in f.resources:
                if r not in capacities:
                    raise SimulationError(
                        f"flow {f.name!r} uses unknown resource {r!r}"
                    )
        used = sorted({r for f in flow_list for r in f.resources})
        for r in used:
            if capacities[r] <= 0:
                raise SimulationError(f"resource {r!r} has non-positive capacity")
        unbounded = sorted(
            f.name
            for f in flow_list
            if not f.resources and math.isinf(f.demand_gbps)
        )
        if unbounded:
            raise SimulationError(
                "unbounded allocation: elastic flow(s) traverse no resources: "
                f"{unbounded}"
            )
        if not flow_list:
            return {}

        signatures = [flow_signature(f) for f in flow_list]
        key = (
            tuple(sorted(signatures)),
            tuple((r, float(capacities[r])) for r in used),
        )
        per_signature = self._memo.get(key)
        if per_signature is not None:
            self._memo.move_to_end(key)
            if self.stats is not None:
                self.stats.cache_hits += 1
        else:
            if self.stats is not None:
                self.stats.cache_misses += 1
                self.stats.solves += 1
            per_signature = _solve_groups(
                signatures, {r: float(capacities[r]) for r in used}
            )
            self._memo[key] = per_signature
            while len(self._memo) > self.maxsize:
                self._memo.popitem(last=False)
        return {f.name: per_signature[sig] for f, sig in zip(flow_list, signatures)}


def _solve_groups(
    signatures: list[tuple], capacities: dict[str, float]
) -> dict[tuple, float]:
    """Cold solve: vectorized progressive filling over signature groups.

    Returns the *per-flow* rate of each signature.  A group of ``m``
    identical flows behaves exactly like one super-flow of ``m`` times
    the weight and demand whose rate is split evenly — the members raise
    together and freeze together.
    """
    groups: OrderedDict[tuple, int] = OrderedDict()
    for sig in signatures:
        groups[sig] = groups.get(sig, 0) + 1
    sigs = list(groups)
    counts = np.array([groups[s] for s in sigs], dtype=float)
    weights = np.array([s[2] for s in sigs], dtype=float)  # per-flow weight
    demands = np.array([s[1] for s in sigs], dtype=float)  # per-flow demand
    group_weight = counts * weights

    resource_names = list(capacities)
    index = {r: i for i, r in enumerate(resource_names)}
    incidence = np.zeros((len(resource_names), len(sigs)))
    for g, sig in enumerate(sigs):
        for r in sig[0]:
            incidence[index[r], g] = 1.0

    caps = np.array([capacities[r] for r in resource_names], dtype=float)
    remaining = caps.copy()
    rates = np.zeros(len(sigs))  # per-flow rate within each group
    active = np.ones(len(sigs), dtype=bool)

    while active.any():
        load = incidence[:, active] @ group_weight[active]
        increment = np.inf
        loaded = load > 0.0
        if loaded.any():
            increment = float((remaining[loaded] / load[loaded]).min())
        with np.errstate(invalid="ignore"):
            headroom = (demands[active] - rates[active]) / weights[active]
        if headroom.size:
            increment = min(increment, float(headroom.min()))
        if math.isinf(increment):  # pragma: no cover - pre-validated in rates()
            raise SimulationError(
                "unbounded allocation: elastic flow(s) traverse no resources"
            )
        increment = max(increment, 0.0)

        rates[active] += increment * weights[active]
        remaining -= increment * load

        saturated = remaining <= _EPS * caps + _EPS
        touches_saturated = incidence[saturated].sum(axis=0) > 0.0
        newly_frozen = active & (
            (rates >= demands - _EPS) | touches_saturated
        )
        if not newly_frozen.any():  # pragma: no cover - numeric safety valve
            raise SimulationError("progressive filling made no progress")
        active &= ~newly_frozen

    return {sig: float(rates[g]) for g, sig in enumerate(sigs)}
