"""fio I/O engines executing against the simulator.

Two engine families:

* :class:`DeviceIOEngine` — ``tcp``/``rdma``/``libaio`` jobs against an
  attached device.  Per-stream service combines the device's calibrated
  NUMA response curve, round-robin DMA service, per-stream protocol CPU
  cost, IRQ-locality penalty, class-mixture derating, and seeded noise;
  streams then share the device through the max-min flow network.
* :class:`MemcpyEngine` — the paper's Algorithm 1 primitive: bulk copy
  threads between two nodes' memories on the DMA plane, contending on
  controllers and fabric links.  **No device state is consulted** —
  that is the whole point of the methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.jobfile import FioJob
from repro.bench.results import JobResult
from repro.errors import BenchmarkError
from repro.flows.flow import Flow
from repro.interconnect.planes import PLANE_DMA
from repro.memory.allocator import PageAllocator
from repro.memory.controller import MemoryController
from repro.memory.policy import MemBinding
from repro.osmodel.noise import NoiseModel
from repro.osmodel.process import SimTask, TaskBinding
from repro.osmodel.scheduler import CpuScheduler
from repro.solver.capacity import link_capacities, link_resource
from repro.solver.session import SolverSession, get_session
from repro.topology.machine import Machine

__all__ = [
    "DeviceIOEngine",
    "MemcpyEngine",
    "link_resource",
    "link_capacities",
    "bulk_copy_gbps",
    "bulk_copy_gbps_many",
    "device_service_levels",
    "OVERSUBSCRIPTION_EXPONENT",
]

#: Throughput exponent for node oversubscription: a stream on a node
#: running ``m`` streams over ``c`` cores keeps ``(c/m) ** exp`` of its
#: service level.  Mild on purpose — the paper's Figs. 5-7 stay near
#: peak at 16 streams but "contention ... introduce[s] some unexpected
#: behavior", and §V-B's all-local binding loses to spreading.
OVERSUBSCRIPTION_EXPONENT = 0.07


def device_service_levels(
    machine: Machine,
    device,
    profile,
    placements,
    direction: str,
    session: SolverSession | None = None,
) -> list[float]:
    """NUMA-limited service level of each stream against one device.

    Combines the device's calibrated response to the stream's DMA path,
    the IRQ-locality factor, and the node-oversubscription derating.
    Shared by the fio engine and the online placement simulator.  DMA
    path bandwidths come from the machine's solver session (memoized).
    """
    session = session if session is not None else get_session(machine)
    streams_on_node: dict[int, int] = {}
    for p in placements:
        streams_on_node[p.cpu_node] = streams_on_node.get(p.cpu_node, 0) + 1
    levels = []
    for p in placements:
        if direction == "write":
            path = session.dma_path_gbps(p.mem_node, device.node_id)
        else:
            path = session.dma_path_gbps(device.node_id, p.mem_node)
        level = profile.curve.value(path)
        level *= device.irq.factor(p.cpu_node, profile.irq_sensitivity)
        cores = machine.node(p.cpu_node).n_cores
        m = streams_on_node[p.cpu_node]
        if m > cores:
            level *= (cores / m) ** OVERSUBSCRIPTION_EXPONENT
        levels.append(level)
    return levels


def _bulk_copy_flows(machine: Machine, src: int, dst: int, threads: int) -> list[Flow]:
    """The per-thread DMA-context flow list of one bulk copy src -> dst."""
    if threads < 1:
        raise BenchmarkError(f"need >= 1 copy thread, got {threads}")
    src_ctrl = MemoryController(src, 0, 0).dma_resource
    dst_ctrl = MemoryController(dst, 0, 0).dma_resource
    resources = [src_ctrl]
    if dst_ctrl != src_ctrl:
        resources.append(dst_ctrl)
    if src != dst:
        for link in machine.path(PLANE_DMA, src, dst).links:
            resources.append(link_resource(*link.ends))
    return [
        Flow(
            name=f"copy/t{i}",
            resources=tuple(resources),
            demand_gbps=machine.params.dma_per_thread_gbps,
        )
        for i in range(threads)
    ]


def bulk_copy_gbps(
    machine: Machine,
    src: int,
    dst: int,
    threads: int,
    session: SolverSession | None = None,
) -> float:
    """Noise-free aggregate bandwidth of ``threads`` bulk copies src -> dst.

    The deterministic core of :class:`MemcpyEngine`: per-thread DMA-style
    contexts contending on both controllers and every link of the
    DMA-plane route.  Algorithm 1 samples this with noise; tests and the
    analytic layers use it directly.  Capacity maps and allocations go
    through the machine's :class:`~repro.solver.session.SolverSession`
    (pass ``session`` to share one across a characterization run).
    """
    session = session if session is not None else get_session(machine)
    rates = session.rates(_bulk_copy_flows(machine, src, dst, threads))
    return sum(rates.values())


def bulk_copy_gbps_many(
    machine: Machine,
    pairs,
    threads: int,
    session: SolverSession | None = None,
) -> list[float]:
    """:func:`bulk_copy_gbps` for many ``(src, dst)`` pairs in one batch.

    All capacity queries go through the session's
    :meth:`~repro.solver.session.SolverSession.rates_many`, so a dense
    Algorithm 1 sweep pays one stats phase and one capacity lookup for
    the whole node loop.  Values are identical to per-pair calls.
    """
    session = session if session is not None else get_session(machine)
    problems = [_bulk_copy_flows(machine, src, dst, threads) for src, dst in pairs]
    return [sum(rates.values()) for rates in session.rates_many(problems)]


@dataclass(frozen=True)
class StreamPlacement:
    """Where one stream runs and where its buffers landed."""

    cpu_node: int
    mem_node: int


def resolve_placements(
    machine: Machine,
    allocator: PageAllocator,
    job: FioJob,
) -> tuple[list[StreamPlacement], list]:
    """Pin the job's streams and allocate their I/O buffers.

    Buffers follow the paper's protocol: local-preferred from the pinned
    node (Linux default) unless the job carries an explicit ``membind``.
    Returns placements plus the allocations (caller releases them).
    """
    scheduler = CpuScheduler(machine, allow_oversubscribe=True)
    placements: list[StreamPlacement] = []
    allocations = []
    binding = (
        MemBinding.bind(job.membind) if job.membind is not None else MemBinding.local()
    )
    for i in range(job.numjobs):
        cpu_bind = (
            job.stream_nodes[i] if job.stream_nodes is not None else job.cpunodebind
        )
        task = scheduler.place(
            SimTask(
                name=f"{job.name}/{i}",
                threads=1,
                binding=TaskBinding(cpu_node=cpu_bind, mem=binding),
            )
        )
        cpu_node = scheduler.node_of(task.name)
        buffer_bytes = job.blocksize * job.iodepth
        allocation = allocator.allocate(buffer_bytes, cpu_node=cpu_node, binding=binding)
        allocations.append(allocation)
        placements.append(
            StreamPlacement(cpu_node=cpu_node, mem_node=allocation.home_node())
        )
    return placements, allocations


class DeviceIOEngine:
    """tcp / rdma / libaio jobs against an attached PCIe device."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.session = get_session(machine)

    def run(self, job: FioJob, rng: np.random.Generator) -> JobResult:
        """Execute ``job`` once and return its result."""
        device = self.machine.devices.get(job.device)
        if device is None:
            raise BenchmarkError(
                f"job {job.name!r} needs device {job.device!r}, but "
                f"{self.machine.name!r} has {sorted(self.machine.devices)}"
            )
        profile = device.engine(job.profile_name)
        if job.engine == "libaio" and job.iodepth < device.min_iodepth:
            raise BenchmarkError(
                f"job {job.name!r}: iodepth {job.iodepth} cannot keep "
                f"{device.name!r} saturated (needs >= {device.min_iodepth})"
            )

        allocator = PageAllocator(self.machine)
        placements, allocations = resolve_placements(self.machine, allocator, job)
        try:
            return self._simulate(job, device, profile, placements, rng)
        finally:
            for allocation in allocations:
                allocator.release(allocation)

    def _simulate(self, job, device, profile, placements, rng) -> JobResult:
        machine = self.machine
        noise = NoiseModel(rng)
        n = len(placements)

        # NUMA-limited service level of each stream's placement, scaled
        # by per-request amortisation away from the 128 KiB reference.
        bs_factor = profile.blocksize_factor(job.blocksize)
        base = [
            level * bs_factor
            for level in device_service_levels(
                machine, device, profile, placements, job.direction,
                session=self.session,
            )
        ]

        # Round-robin DMA service: each of n streams sees base/ways.
        service = device.dma.per_stream_caps(base)

        # Protocol CPU cost: streams sharing a node split its cores.
        cpu_caps = [float("inf")] * n
        if profile.cpu_gbps_per_stream is not None:
            on_node: dict[int, int] = {}
            for p in placements:
                on_node[p.cpu_node] = on_node.get(p.cpu_node, 0) + 1
            for i, p in enumerate(placements):
                cores = machine.node(p.cpu_node).n_cores
                share = min(1.0, cores / on_node[p.cpu_node])
                cpu_caps[i] = profile.cpu_gbps_per_stream * share

        # Mixture derating: the DMA engine bouncing between NUMA classes.
        groups: dict[float, int] = {}
        for level in base:
            key = round(level, 1)
            groups[key] = groups.get(key, 0) + 1
        mix = device.dma.mixture_factor(list(groups.values()), profile.mix_coef)

        sigma = profile.sigma if n < profile.crowd_threshold else profile.crowd_sigma
        stream_noise = noise.factors(sigma, n)
        agg_noise = noise.factor(sigma)

        resource = f"dev:{device.name}:{job.direction}"
        per_cap = [s if profile.per_stream_cap_gbps is None
                   else min(s, profile.per_stream_cap_gbps) for s in service]
        time_based = job.runtime_s is not None
        flows = [
            Flow(
                name=f"{job.name}/{i}",
                resources=(resource,),
                demand_gbps=min(per_cap[i], cpu_caps[i]) * mix * float(stream_noise[i]),
                size_bytes=None if time_based else float(job.size_bytes),
            )
            for i in range(n)
        ]
        # The DMA engine time-slices across streams and each slice runs
        # at that stream's path-limited rate, so the device's aggregate
        # ceiling is the stream-weighted MEAN of the service levels —
        # the physical basis of the paper's Eq. 1.
        agg_cap = sum(base) / len(base)
        network = self.session.network({resource: agg_cap * mix * agg_noise})
        if time_based:
            # fio time_based: constant rates for runtime seconds.
            rates = network.rates(flows)
            per_stream = dict(rates)
            duration = float(job.runtime_s)
        else:
            outcomes = network.simulate(flows)
            # fio reports the sum of per-job bandwidths (each job:
            # size/time), not total bytes over the busy interval.
            per_stream = {name: o.avg_gbps for name, o in outcomes.items()}
            duration = max(o.finish_s for o in outcomes.values())
        return JobResult(
            job_name=job.name,
            engine=f"{job.engine}:{job.rw}",
            streams=tuple((p.cpu_node, p.mem_node) for p in placements),
            per_stream_gbps=per_stream,
            aggregate_gbps=sum(per_stream.values()),
            duration_s=duration,
            tags={"device": device.name, "direction": job.direction, "mix": mix},
            solver_stats=self.session.stats.snapshot(),
        )


class MemcpyEngine:
    """Algorithm 1's primitive: bulk DMA-plane copies between two nodes.

    ``rw="write"`` copies from ``cpunodebind``'s memory into the target
    node's memory (simulating the device pulling host data);
    ``rw="read"`` copies target -> ``cpunodebind`` (device pushing to the
    host).  Copy threads are bound to the target node per Algorithm 1,
    which on the DMA plane costs them nothing — exactly the engine-
    offload behaviour the methodology imitates.
    """

    #: Run-to-run noise of a bulk copy measurement.
    sigma = 0.012

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.session = get_session(machine)

    def run(self, job: FioJob, rng: np.random.Generator) -> JobResult:
        """Execute ``job`` once and return its result."""
        if job.cpunodebind is None:
            raise BenchmarkError(f"memcpy job {job.name!r} requires cpunodebind")
        other = job.cpunodebind
        target = job.target_node
        for node in (other, target):
            if node not in self.machine.node_ids:
                raise BenchmarkError(f"memcpy job {job.name!r}: unknown node {node}")
        if job.rw == "write":
            src, dst = other, target
        else:
            src, dst = target, other

        machine = self.machine
        noise = NoiseModel(rng)

        src_ctrl = MemoryController(src, 0, 0).dma_resource
        dst_ctrl = MemoryController(dst, 0, 0).dma_resource
        resources = [src_ctrl]
        if dst_ctrl != src_ctrl:
            resources.append(dst_ctrl)
        if src != dst:
            for link in machine.path(PLANE_DMA, src, dst).links:
                resources.append(link_resource(*link.ends))

        per_thread_noise = noise.factors(self.sigma, job.numjobs)
        flows = [
            Flow(
                name=f"{job.name}/t{i}",
                resources=tuple(resources),
                demand_gbps=machine.params.dma_per_thread_gbps
                * float(per_thread_noise[i]),
                size_bytes=float(job.size_bytes),
            )
            for i in range(job.numjobs)
        ]
        outcomes = self.session.simulate(flows)
        aggregate = sum(o.avg_gbps for o in outcomes.values()) * noise.factor(self.sigma)
        duration = max(o.finish_s for o in outcomes.values())
        return JobResult(
            job_name=job.name,
            engine=f"memcpy:{job.rw}",
            streams=tuple((target, other) for _ in range(job.numjobs)),
            per_stream_gbps={name: o.avg_gbps for name, o in outcomes.items()},
            aggregate_gbps=aggregate,
            duration_s=duration,
            tags={"src": src, "dst": dst, "target": target},
            solver_stats=self.session.stats.snapshot(),
        )
