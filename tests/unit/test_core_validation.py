"""Model-agreement metrics."""

import pytest

from repro.core.iomodel import IOModelBuilder
from repro.core.validation import (
    class_ordering_holds,
    class_separation,
    rank_correlation,
    validate_model,
)
from repro.errors import ModelError


@pytest.fixture()
def read_model(host, registry):
    return IOModelBuilder(host, registry=registry, runs=10).build(7, "read")


class TestRankCorrelation:
    def test_perfect(self):
        a = {0: 1.0, 1: 2.0, 2: 3.0}
        assert rank_correlation(a, a) == pytest.approx(1.0)

    def test_reversed(self):
        a = {0: 1.0, 1: 2.0, 2: 3.0}
        b = {0: 3.0, 1: 2.0, 2: 1.0}
        assert rank_correlation(a, b) == pytest.approx(-1.0)

    def test_common_keys_only(self):
        a = {0: 1.0, 1: 2.0, 2: 3.0, 9: 100.0}
        b = {0: 1.0, 1: 2.0, 2: 3.0, 8: -5.0}
        assert rank_correlation(a, b) == pytest.approx(1.0)

    def test_too_few_keys_rejected(self):
        with pytest.raises(ModelError):
            rank_correlation({0: 1.0}, {0: 1.0})


class TestClassOrdering:
    def test_consistent_operation_holds(self, read_model):
        by_rank = {1: 22.0, 2: 21.9, 3: 18.3, 4: 16.1}
        measured = {n: by_rank[read_model.class_of(n).rank]
                    for n in read_model.values}
        assert class_ordering_holds(read_model, measured)

    def test_tolerated_inversion(self, read_model):
        # The paper's own TCP receiver row: class 3 avg slightly above 2.
        by_rank = {1: 21.2, 2: 20.0, 3: 20.6, 4: 14.4}
        measured = {n: by_rank[read_model.class_of(n).rank]
                    for n in read_model.values}
        assert class_ordering_holds(read_model, measured, tolerance=0.05)
        assert not class_ordering_holds(read_model, measured, tolerance=0.01)

    def test_gross_violation_detected(self, read_model):
        by_rank = {1: 10.0, 2: 20.0, 3: 30.0, 4: 40.0}
        measured = {n: by_rank[read_model.class_of(n).rank]
                    for n in read_model.values}
        assert not class_ordering_holds(read_model, measured)


class TestSeparation:
    def test_strong_separation(self, read_model):
        by_rank = {1: 40.0, 2: 30.0, 3: 20.0, 4: 10.0}
        measured = {n: by_rank[read_model.class_of(n).rank]
                    for n in read_model.values}
        assert class_separation(read_model, measured) > 100  # zero spread

    def test_dissolved_classes_score_low(self, read_model, registry):
        rng = registry.stream("sep")
        measured = {n: 20.0 + float(rng.normal(0, 3)) for n in read_model.values}
        strong = {n: {1: 40.0, 2: 30.0, 3: 20.0, 4: 10.0}[
            read_model.class_of(n).rank] for n in read_model.values}
        assert (class_separation(read_model, measured)
                < class_separation(read_model, strong))


class TestValidateModel:
    def test_reports_per_operation(self, read_model):
        by_rank = {1: 22.0, 2: 21.9, 3: 18.3, 4: 16.1}
        measured = {n: by_rank[read_model.class_of(n).rank]
                    for n in read_model.values}
        reports = validate_model(read_model, {"RDMA_READ": measured})
        report = reports["RDMA_READ"]
        assert report.ordering_holds
        assert report.spearman_rho > 0.8
        assert "RDMA_READ" in report.render()
