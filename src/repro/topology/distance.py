"""Hop-distance and ``numactl``-style distance matrices.

The paper argues hop distance is a *bad* predictor of NUMA cost — but to
demonstrate that, we must compute it.  :func:`hop_matrix` gives true
minimal hop counts over the fabric; :func:`distance_matrix` renders them
in the SLIT convention ``numactl --hardware`` prints (10 local, and the
paper's reference [18] notes these are "often inaccurate", which the SLIT
quantisation reproduces).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.routing.batch import bfs_layers
from repro.topology.machine import Machine

__all__ = ["hop_matrix", "hop_pairs", "distance_matrix"]

_HOP_CACHE_ATTR = "_hop_matrix_cache"
_HOP_PAIRS_ATTR = "_hop_pairs_cache"


def hop_matrix(machine: Machine) -> np.ndarray:
    """Minimal hop counts between all node pairs (undirected reachability).

    Returns an ``(n, n)`` integer array indexed by position in
    ``machine.node_ids``.  One :func:`~repro.routing.batch.bfs_layers`
    sweep per source over an undirected view of the fabric.  Machines
    are immutable, so the result is cached on the machine object
    (callers get a fresh copy each time); edited copies from
    :mod:`repro.topology.modify` are new objects and recompute.
    """
    cached = getattr(machine, _HOP_CACHE_ATTR, None)
    if cached is not None:
        return cached.copy()
    ids = machine.node_ids
    index = {nid: i for i, nid in enumerate(ids)}
    n = len(ids)
    dist = np.full((n, n), -1, dtype=np.int64)
    adj: dict[int, set[int]] = {nid: set() for nid in ids}
    for src, dst in machine.links:
        adj[src].add(dst)
        adj[dst].add(src)
    for start in ids:
        seen, _layers = bfs_layers(adj, start)
        for nid, hops in seen.items():
            dist[index[start], index[nid]] = hops
    if (dist < 0).any():
        raise TopologyError(f"machine {machine.name!r} fabric is not connected")
    try:
        setattr(machine, _HOP_CACHE_ATTR, dist)
    except AttributeError:  # pragma: no cover - exotic machine subclasses
        return dist
    return dist.copy()


def hop_pairs(machine: Machine) -> "dict[tuple[int, int], int]":
    """``(src, dst) -> hops`` for every node pair, cached on the machine.

    The dict form of :func:`hop_matrix` that policy code indexes by node
    id (e.g. :class:`~repro.memory.allocator.PageAllocator` ordering
    nodes by distance).  Building it is O(N^2); per-probe consumers used
    to rebuild it on every construction, which dominated whole-host
    characterization sweeps.  Treat the returned dict as read-only — it
    is shared by every caller for the machine's lifetime.
    """
    cached = getattr(machine, _HOP_PAIRS_ATTR, None)
    if cached is not None:
        return cached
    hops = hop_matrix(machine)
    ids = machine.node_ids
    index = {nid: i for i, nid in enumerate(ids)}
    pairs = {
        (a, b): int(hops[index[a], index[b]]) for a in ids for b in ids
    }
    try:
        setattr(machine, _HOP_PAIRS_ATTR, pairs)
    except AttributeError:  # pragma: no cover - exotic machine subclasses
        pass
    return pairs


def distance_matrix(machine: Machine, per_hop: int = 6, base: int = 10) -> np.ndarray:
    """SLIT-style distances: ``base`` on the diagonal, ``base + per_hop*h`` off it.

    This is the (coarse, frequently wrong) table ``numactl --hardware``
    reports and that hop-distance-based schedulers consume.
    """
    hops = hop_matrix(machine)
    return base + per_hop * hops
