"""F10 — Fig. 10: the proposed memcpy model of node 7 (Algorithm 1).

The methodology under test: build the device write/read performance
models *without touching any device*, and verify their class structure
matches Tables IV/V (classes and averages).
"""

from __future__ import annotations

from repro.core.iomodel import IOModelBuilder
from repro.experiments import paper_values
from repro.experiments.common import (
    IO_NODE,
    check,
    check_close,
    default_machine,
    default_registry,
)
from repro.experiments.registry import ExperimentResult

TITLE = "Fig. 10: proposed memcpy-based I/O performance model of node 7"


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Run Algorithm 1 for both modes and check classes + averages."""
    m = default_machine(machine)
    builder = IOModelBuilder(m, registry=default_registry(registry),
                             runs=10 if quick else 100)
    write_model, read_model = builder.build_both(IO_NODE)

    checks = [
        check(
            "write classes = {6,7} > {0,1,4,5} > {2,3}",
            [sorted(c.node_ids) for c in write_model.classes]
            == paper_values.TABLE4_CLASSES,
            f"got {[sorted(c.node_ids) for c in write_model.classes]}",
        ),
        check(
            "read classes = {6,7} > {2,3} > {0,1,5} > {4}",
            [sorted(c.node_ids) for c in read_model.classes]
            == paper_values.TABLE5_CLASSES,
            f"got {[sorted(c.node_ids) for c in read_model.classes]}",
        ),
    ]
    for model, paper_avgs, label in (
        (write_model, paper_values.TABLE4_AVG["memcpy"], "write"),
        (read_model, paper_values.TABLE5_AVG["memcpy"], "read"),
    ):
        for cls, paper_avg in zip(model.classes, paper_avgs):
            checks.append(
                check_close(
                    f"{label} class {cls.rank} average", cls.avg, paper_avg, 0.10
                )
            )
    text = "\n\n".join([write_model.render(), read_model.render()])
    return ExperimentResult(
        exp_id="f10", title=TITLE, text=text,
        data={"write": write_model.values, "read": read_model.values},
        checks=tuple(checks),
    )
