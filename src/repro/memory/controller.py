"""Memory-controller resource adapters for the flow solver."""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.machine import Machine

__all__ = ["MemoryController", "controller_capacities"]


@dataclass(frozen=True)
class MemoryController:
    """Flow-solver view of one node's DRAM controller.

    Exposes stable resource names so benchmark engines and the core
    characterization code count controller contention consistently.
    """

    node_id: int
    dram_gbps: float
    pio_ctrl_gbps: float

    @property
    def dma_resource(self) -> str:
        """Resource name for bulk/DMA traffic through this controller."""
        return f"ctrl-dma:{self.node_id}"

    @property
    def pio_resource(self) -> str:
        """Resource name for reported-PIO traffic through this controller."""
        return f"ctrl-pio:{self.node_id}"


def controller_capacities(machine: Machine) -> dict[str, float]:
    """Capacities for every controller resource of ``machine``."""
    caps: dict[str, float] = {}
    for nid in machine.node_ids:
        node = machine.node(nid)
        ctrl = MemoryController(nid, node.dram_gbps, node.pio_ctrl_gbps)
        caps[ctrl.dma_resource] = node.dram_gbps
        caps[ctrl.pio_resource] = node.pio_ctrl_gbps
    return caps
