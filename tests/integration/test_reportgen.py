"""The EXPERIMENTS.md generator and the experiment registry."""

import io

from repro.experiments import EXPERIMENTS, list_experiments
from repro.experiments.reportgen import generate


class TestRegistry:
    def test_twentyone_experiments_registered(self):
        assert len(EXPERIMENTS) == 21

    def test_every_paper_artifact_present(self):
        for exp_id in ("t1", "t2", "t3", "t4", "t5",
                       "f3", "f4", "f5", "f6", "f7", "f10",
                       "eq1", "s1",
                       "a1", "a2", "a3", "a4", "a5", "a6", "fw1", "fw2"):
            assert exp_id in EXPERIMENTS

    def test_listing_has_distinct_titles(self):
        titles = list_experiments()
        assert len(titles) == len(EXPERIMENTS)
        assert len(set(titles.values())) == len(titles)


class TestReportGeneration:
    def test_generates_complete_markdown(self):
        buffer = io.StringIO()
        generate(buffer)
        text = buffer.getvalue()
        assert text.startswith("# EXPERIMENTS")
        for exp_id in EXPERIMENTS:
            assert f"## {exp_id} — " in text
        assert "21/21 experiments pass" in text
        assert "Known deviations" in text
        assert "**FAIL**" not in text
