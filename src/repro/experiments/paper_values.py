"""The paper's reported numbers, transcribed once.

Every experiment and test compares against these constants, so the
provenance of each target is auditable in one place.  Units: Gbps.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_NUMA_FACTORS",
    "TABLE4_CLASSES",
    "TABLE4_AVG",
    "TABLE5_CLASSES",
    "TABLE5_AVG",
    "STREAM_FACTS",
    "EQ1_EXAMPLE",
]

#: Table I — server type -> NUMA factor.
TABLE1_NUMA_FACTORS = {
    "Intel 4 sockets/4 nodes": 1.5,
    "AMD 4 sockets/8 nodes": 2.7,
    "AMD 8 sockets/8 nodes": 2.8,
    "HP blade system 32 nodes": 5.5,
}

#: Table IV — device-write classes (node sets, best first).
TABLE4_CLASSES = [[6, 7], [0, 1, 4, 5], [2, 3]]

#: Table IV — per-operation class averages (best class first).
TABLE4_AVG = {
    "memcpy": [51.2, 44.5, 26.6],
    "tcp_send": [20.3, 20.4, 16.2],
    "rdma_write": [23.3, 23.2, 17.1],
    "ssd_write": [28.8, 28.5, 18.0],
}

#: Table V — device-read classes (node sets, best first).
TABLE5_CLASSES = [[6, 7], [2, 3], [0, 1, 5], [4]]

#: Table V — per-operation class averages (best class first).
TABLE5_AVG = {
    "memcpy": [49.1, 48.6, 40.4, 27.9],
    "tcp_recv": [21.2, 20.0, 20.6, 14.4],
    "rdma_read": [22.0, 22.0, 18.3, 16.1],
    "ssd_read": [34.7, 33.1, 30.1, 18.5],
}

#: §IV-A prose facts about the STREAM matrix (Fig. 3).
STREAM_FACTS = {
    # Quoted values.
    "cpu7_mem4": 21.34,
    "cpu4_mem7": 18.45,
    # CPU-centric model: nodes {0,1} beat {2,3} by 43-88 % (§IV-B2).
    "ratio_01_over_23_min": 1.43,
    "ratio_01_over_23_max": 1.88,
}

#: §V-B Eq. 1 worked example (RDMA_READ, 2 streams node 2 + 2 node 0).
EQ1_EXAMPLE = {
    "class2_avg": 21.998,  # node 2's class
    "class3_avg": 18.036,  # node 0's class
    "predicted": 20.017,
    "measured": 19.415,
    "relative_error": 0.031,
}
