"""Satellite (d): sharded execution is bit-identical to serial.

Across random topologies and shard counts (including more shards than
items), a :class:`~repro.fabric.FabricPool` sweep must reproduce the
serial sweep exactly: same model values, same render bytes, same RNG
stream names, same draw counts.  A SIGKILLed worker mid-sweep must not
change any of that.

One module-scoped pool serves every example — the pool is
machine-agnostic (tasks carry their arena refs), and persistent-pool
reuse is exactly the production shape.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterize import HostCharacterizer
from repro.core.iomodel import IOModelBuilder
from repro.fabric import FabricPool, live_segments
from repro.rng import RngRegistry
from repro.topology.builders import scaled_host

pytestmark = pytest.mark.fabric

MAX_JOBS = 4

hosts = st.builds(
    scaled_host,
    n_packages=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=20),
    asymmetry_fraction=st.floats(min_value=0.0, max_value=0.4, allow_nan=False),
)


@pytest.fixture(scope="module")
def pool():
    with FabricPool(jobs=MAX_JOBS) as shared:
        yield shared
    assert live_segments() == []


@given(
    machine=hosts,
    jobs=st.integers(min_value=1, max_value=MAX_JOBS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["write", "read"]),
)
@settings(max_examples=10, deadline=None)
def test_sharded_build_many_is_bit_identical(pool, machine, jobs, seed, mode):
    targets = list(machine.node_ids)
    serial_registry = RngRegistry(seed)
    serial = IOModelBuilder(machine, registry=serial_registry, runs=5).build_many(
        tuple(targets), mode
    )

    shard_pool = pool if jobs == MAX_JOBS else FabricPool(jobs=jobs)
    try:
        sharded_registry = RngRegistry(seed)
        sharded = shard_pool.build_many(
            machine, targets, mode, registry=sharded_registry, runs=5
        )
    finally:
        if shard_pool is not pool:
            shard_pool.close()

    assert list(sharded) == list(serial)
    for target in targets:
        assert sharded[target].values == serial[target].values
        assert sharded[target].render() == serial[target].render()
    assert sharded_registry.draw_counts == serial_registry.draw_counts
    assert set(sharded_registry.draw_counts) == set(serial_registry.draw_counts)


@given(
    machine=hosts,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_nodes=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=5, deadline=None)
def test_more_shards_than_items_degrades_gracefully(pool, machine, seed, n_nodes):
    """MAX_JOBS workers over fewer targets: plan clamps, results match."""
    targets = list(machine.node_ids)[:n_nodes]
    serial_registry = RngRegistry(seed)
    serial = HostCharacterizer(
        machine, registry=serial_registry, runs=5
    ).characterize_many(tuple(targets))

    sharded_registry = RngRegistry(seed)
    sharded = pool.characterize_many(
        machine, targets, registry=sharded_registry, runs=5
    )
    assert list(sharded) == list(serial)
    for target in targets:
        assert sharded[target].render() == serial[target].render()
    assert sharded_registry.draw_counts == serial_registry.draw_counts


def test_sigkilled_worker_recovers_bit_identical(tmp_path, monkeypatch):
    """A worker killed mid-sweep is retried; results stay identical."""
    machine = scaled_host(3, seed=7)
    targets = list(machine.node_ids)
    serial_registry = RngRegistry(123)
    serial = IOModelBuilder(machine, registry=serial_registry, runs=5).build_many(
        tuple(targets), "write"
    )

    # The module-scoped pool may legitimately hold arenas; this test only
    # asserts the crash pool itself leaks nothing.
    baseline = live_segments()
    marker = tmp_path / "kill-once"
    monkeypatch.setenv("REPRO_FABRIC_KILL_ONCE", str(marker))
    with FabricPool(jobs=2) as crash_pool:
        sharded_registry = RngRegistry(123)
        sharded = crash_pool.build_many(
            machine, targets, "write", registry=sharded_registry, runs=5
        )
        assert crash_pool.stats()["retried"] >= 1
    assert marker.exists(), "the kill-once hook never fired"
    assert list(sharded) == list(serial)
    for target in targets:
        assert sharded[target].render() == serial[target].render()
    assert sharded_registry.draw_counts == serial_registry.draw_counts
    assert live_segments() == baseline


def test_pool_gives_up_after_retries(tmp_path, monkeypatch):
    """With retries exhausted the pool raises instead of looping."""
    from repro.errors import FabricError

    baseline = live_segments()
    machine = scaled_host(2, seed=1)
    # Kill every incarnation: point the marker at an uncreatable path so
    # os.open never succeeds in marking "already died".
    monkeypatch.setenv(
        "REPRO_FABRIC_KILL_ONCE", str(tmp_path / "missing-dir" / "marker")
    )
    with FabricPool(jobs=1, retries=1) as crash_pool:
        with pytest.raises(FabricError, match="broke"):
            crash_pool.build_many(
                machine, list(machine.node_ids), "write",
                registry=RngRegistry(1), runs=3,
            )
    assert live_segments() == baseline
