"""Property-based tests for the time-domain flow simulation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.flow import Flow
from repro.flows.network import FlowNetwork
from repro.units import GB, gbps_to_bytes_per_s


@st.composite
def scenarios(draw):
    n_flows = draw(st.integers(min_value=1, max_value=6))
    caps = {"dev": draw(st.floats(min_value=1.0, max_value=40.0,
                                  allow_nan=False))}
    flows = []
    for i in range(n_flows):
        size = draw(st.integers(min_value=GB // 10, max_value=40 * GB))
        start = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        demand = draw(st.floats(min_value=0.5, max_value=30.0, allow_nan=False))
        flows.append(
            Flow(name=f"f{i}", resources=("dev",), demand_gbps=demand,
                 size_bytes=size, start_s=start)
        )
    return flows, caps


@given(scenarios())
@settings(max_examples=150, deadline=None)
def test_all_flows_complete_with_exact_bytes(scenario):
    flows, caps = scenario
    outcomes = FlowNetwork(caps).simulate(flows)
    assert set(outcomes) == {f.name for f in flows}
    for f in flows:
        o = outcomes[f.name]
        assert o.bytes_moved == f.size_bytes
        assert o.finish_s > o.start_s


@given(scenarios())
@settings(max_examples=150, deadline=None)
def test_rates_never_exceed_demand_or_capacity(scenario):
    flows, caps = scenario
    outcomes = FlowNetwork(caps).simulate(flows)
    for f in flows:
        o = outcomes[f.name]
        # Average rate cannot beat the per-flow demand ceiling.
        assert o.avg_gbps <= f.demand_gbps * (1 + 1e-6)
        # Nor the single shared resource.
        assert o.avg_gbps <= caps["dev"] * (1 + 1e-6)


@given(scenarios())
@settings(max_examples=100, deadline=None)
def test_finish_no_earlier_than_solo_transfer(scenario):
    """Contention can only slow a flow down."""
    flows, caps = scenario
    outcomes = FlowNetwork(caps).simulate(flows)
    for f in flows:
        solo_rate = min(f.demand_gbps, caps["dev"])
        solo_duration = f.size_bytes / gbps_to_bytes_per_s(solo_rate)
        o = outcomes[f.name]
        assert o.duration_s >= solo_duration * (1 - 1e-6)
