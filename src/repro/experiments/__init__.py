"""Experiment registry: one module per paper table/figure.

Each experiment is a function ``run(machine=None, registry=None, quick=False)``
returning an :class:`~repro.experiments.registry.ExperimentResult` that
carries the rendered text, the structured data, and pass/fail *shape
checks* against the paper's reported values.  The same functions back:

* ``repro-numa experiment <id>`` (CLI),
* the pytest-benchmark harness (one bench per experiment), and
* EXPERIMENTS.md generation (paper-vs-measured records).

Experiment ids follow DESIGN.md §4: ``t1``-``t5`` (tables), ``f3``-``f10``
(figures), ``eq1``, ``s1`` (scheduler application), ``a1``-``a3``
(ablations/negative results).
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    Check,
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Check",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
