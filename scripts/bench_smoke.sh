#!/usr/bin/env sh
# Solver-layer benchmark smoke: run the library-performance suite under
# pytest-benchmark and snapshot the results to BENCH_solver.json at the
# repo root.  Compare against a previous snapshot with
#   PYTHONPATH=src python -m pytest benchmarks/bench_library_performance.py \
#       --benchmark-compare
# or just diff the min/mean fields of two json files.
set -eu

cd "$(dirname "$0")/.."

PYTHONPATH=src python -m pytest benchmarks/bench_library_performance.py \
    -q --benchmark-only --benchmark-json=BENCH_solver.json "$@"

PYTHONPATH=src python - <<'EOF'
import json

with open("BENCH_solver.json") as fh:
    data = json.load(fh)
print("\nBENCH_solver.json snapshot:")
for bench in sorted(data["benchmarks"], key=lambda b: b["name"]):
    stats = bench["stats"]
    print(f"  {bench['name']:45s} mean {stats['mean'] * 1e3:8.2f} ms  "
          f"min {stats['min'] * 1e3:8.2f} ms")
EOF

# Fault-layer overhead gate: the fault subsystem is strictly opt-in, so a
# healthy STREAM matrix on a zero-fault FaultedMachine view must cost
# within 5 % of the same matrix on the plain host (min-of-5 each).
PYTHONPATH=src python - <<'EOF'
import time

from repro.bench.stream import StreamBenchmark
from repro.faults.plan import FaultedMachine
from repro.topology.builders import reference_host


def best_of(machine, repeats=5, runs=20):
    times = []
    for _ in range(repeats):
        bench = StreamBenchmark(machine, runs=runs)
        t0 = time.perf_counter()
        bench.matrix()
        times.append(time.perf_counter() - t0)
    return min(times)


host = reference_host()
best_of(host, repeats=1)  # warmup (imports, caches)
healthy = best_of(host)
faulted = best_of(FaultedMachine(host, ()))
ratio = faulted / healthy
print(f"\nfault-layer overhead on healthy stream matrix: "
      f"healthy {healthy * 1e3:.1f} ms, zero-fault view {faulted * 1e3:.1f} ms "
      f"({(ratio - 1) * 100:+.1f} %)")
if ratio > 1.05:
    raise SystemExit("FAIL: fault layer adds >5% overhead to the healthy path")
print("OK: fault layer overhead within 5%")
EOF
