"""Task and binding records."""

import pytest

from repro.errors import AffinityError
from repro.memory.policy import AllocPolicy
from repro.osmodel.process import SimTask, TaskBinding


class TestTaskBinding:
    def test_default_is_unbound_local(self):
        binding = TaskBinding()
        assert binding.cpu_node is None
        assert binding.mem.policy is AllocPolicy.LOCAL_PREFERRED

    def test_on_node(self):
        binding = TaskBinding.on_node(5)
        assert binding.cpu_node == 5
        assert binding.mem.policy is AllocPolicy.LOCAL_PREFERRED

    def test_bound(self):
        binding = TaskBinding.bound(cpu_node=5, mem_node=2)
        assert binding.cpu_node == 5
        assert binding.mem.nodes == (2,)


class TestSimTask:
    def test_defaults(self):
        task = SimTask(name="t")
        assert task.threads == 1
        assert not task.scheduled

    def test_zero_threads_rejected(self):
        with pytest.raises(AffinityError):
            SimTask(name="t", threads=0)

    def test_scheduled_after_cores_granted(self):
        task = SimTask(name="t")
        task.cores = (3,)
        assert task.scheduled
