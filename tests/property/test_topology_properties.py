"""Property-based tests on parametric machines.

The calibrated host exercises one topology; these sweep machine shapes
the calibration never saw and check the structural invariants the
higher layers rely on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.planes import PLANE_DMA, PLANE_PIO
from repro.topology.builders import parametric_machine
from repro.topology.distance import hop_matrix
from repro.topology.machine import Relation

machines = st.builds(
    parametric_machine,
    n_packages=st.integers(min_value=1, max_value=6),
    nodes_per_package=st.integers(min_value=1, max_value=3),
    cores_per_node=st.integers(min_value=1, max_value=4),
    chords=st.integers(min_value=0, max_value=2),
)


@given(machines)
@settings(max_examples=60, deadline=None)
def test_hop_matrix_is_a_metric(machine):
    hops = hop_matrix(machine)
    n = machine.n_nodes
    assert (hops == hops.T).all()
    assert (hops.diagonal() == 0).all()
    # Triangle inequality.
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert hops[i, j] <= hops[i, k] + hops[k, j]


@given(machines)
@settings(max_examples=60, deadline=None)
def test_routes_exist_for_all_pairs_and_planes(machine):
    for plane in (PLANE_PIO, PLANE_DMA):
        for src in machine.node_ids:
            for dst in machine.node_ids:
                path = machine.path(plane, src, dst)
                assert path.src == src and path.dst == dst
                assert len(path.hops) == path.n_hops + 1


@given(machines)
@settings(max_examples=60, deadline=None)
def test_route_hops_match_hop_matrix(machine):
    hops = hop_matrix(machine)
    ids = list(machine.node_ids)
    for i, src in enumerate(ids):
        for j, dst in enumerate(ids):
            path = machine.path(PLANE_DMA, src, dst)
            assert path.n_hops == hops[i, j]


@given(machines)
@settings(max_examples=60, deadline=None)
def test_relations_consistent(machine):
    for a in machine.node_ids:
        for b in machine.node_ids:
            rel = machine.relation(a, b)
            assert rel == machine.relation(b, a)
            if a == b:
                assert rel is Relation.LOCAL
            elif machine.node(a).package_id == machine.node(b).package_id:
                assert rel is Relation.NEIGHBOR
            else:
                assert rel is Relation.REMOTE


@given(machines)
@settings(max_examples=60, deadline=None)
def test_dma_path_bandwidth_bounded(machine):
    for src in machine.node_ids:
        for dst in machine.node_ids:
            bw = machine.dma_path_gbps(src, dst)
            assert 0 < bw <= max(
                machine.node(n).dram_gbps for n in machine.node_ids
            )


@given(machines)
@settings(max_examples=60, deadline=None)
def test_local_dma_is_row_maximum(machine):
    for src in machine.node_ids:
        local = machine.dma_path_gbps(src, src)
        for dst in machine.node_ids:
            assert machine.dma_path_gbps(src, dst) <= local + 1e-9


@given(machines)
@settings(max_examples=40, deadline=None)
def test_pio_stream_positive_and_local_best(machine):
    for cpu in machine.node_ids:
        local = machine.pio_stream_gbps(cpu, cpu)
        assert local > 0
        for mem in machine.node_ids:
            assert machine.pio_stream_gbps(cpu, mem) <= local + 1e-9
