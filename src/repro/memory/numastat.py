"""``numastat``-style allocation counters."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NumaStat"]


@dataclass
class NumaStat:
    """Per-node page-allocation counters, matching ``numastat`` fields.

    * ``numa_hit`` — pages allocated on the intended node;
    * ``numa_miss`` — pages allocated here although another node was
      intended (that node was full);
    * ``numa_foreign`` — pages intended here but allocated elsewhere;
    * ``interleave_hit`` — interleaved pages placed as planned;
    * ``local_node`` / ``other_node`` — allocations relative to the
      faulting CPU's node.
    """

    node_ids: tuple[int, ...]
    numa_hit: dict[int, int] = field(default_factory=dict)
    numa_miss: dict[int, int] = field(default_factory=dict)
    numa_foreign: dict[int, int] = field(default_factory=dict)
    interleave_hit: dict[int, int] = field(default_factory=dict)
    local_node: dict[int, int] = field(default_factory=dict)
    other_node: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for counter in (
            self.numa_hit,
            self.numa_miss,
            self.numa_foreign,
            self.interleave_hit,
            self.local_node,
            self.other_node,
        ):
            for nid in self.node_ids:
                counter.setdefault(nid, 0)

    def record(
        self,
        placed_node: int,
        intended_node: int,
        cpu_node: int,
        pages: int,
        interleaved: bool = False,
    ) -> None:
        """Account one allocation of ``pages`` pages."""
        if placed_node == intended_node:
            self.numa_hit[placed_node] += pages
            if interleaved:
                self.interleave_hit[placed_node] += pages
        else:
            self.numa_miss[placed_node] += pages
            self.numa_foreign[intended_node] += pages
        if placed_node == cpu_node:
            self.local_node[placed_node] += pages
        else:
            self.other_node[placed_node] += pages

    def render(self) -> str:
        """The classic ``numastat`` table."""
        headers = ["", *[f"node{n}" for n in self.node_ids]]
        rows = [
            ("numa_hit", self.numa_hit),
            ("numa_miss", self.numa_miss),
            ("numa_foreign", self.numa_foreign),
            ("interleave_hit", self.interleave_hit),
            ("local_node", self.local_node),
            ("other_node", self.other_node),
        ]
        width = 14
        lines = ["".join(h.rjust(width) for h in headers)]
        for label, counter in rows:
            cells = [label.ljust(width)]
            cells += [str(counter[n]).rjust(width) for n in self.node_ids]
            lines.append("".join(cells))
        return "\n".join(lines)
