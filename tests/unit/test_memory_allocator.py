"""Page allocator policy semantics."""

import pytest

from repro.errors import AllocationError
from repro.memory.allocator import PAGE_BYTES, PageAllocator
from repro.memory.policy import MemBinding
from repro.units import GiB, MiB


@pytest.fixture()
def allocator(host):
    return PageAllocator(host)


class TestLocalPreferred:
    def test_lands_on_cpu_node(self, allocator):
        allocation = allocator.allocate(64 * MiB, cpu_node=3)
        assert allocation.home_node() == 3
        assert allocation.total_bytes >= 64 * MiB

    def test_spills_to_nearest_when_full(self, allocator):
        # Exhaust node 3, then allocate local-preferred from it.
        free = allocator.free_bytes(3)
        allocator.allocate(free, cpu_node=3, binding=MemBinding.bind(3))
        spilled = allocator.allocate(64 * MiB, cpu_node=3)
        assert 3 not in spilled.nodes
        # Nearest first: a one-hop neighbour of node 3 (lowest id wins).
        assert spilled.home_node() == 1

    def test_records_stats(self, allocator):
        allocator.allocate(4 * MiB, cpu_node=5)
        assert allocator.stats.numa_hit[5] == 4 * MiB // PAGE_BYTES


class TestBind:
    def test_bind_lands_exactly(self, allocator):
        allocation = allocator.allocate(
            32 * MiB, cpu_node=0, binding=MemBinding.bind(6)
        )
        assert allocation.nodes == (6,)

    def test_bind_fails_when_exhausted(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate(8 * GiB, cpu_node=0, binding=MemBinding.bind(6))

    def test_failed_bind_rolls_back(self, allocator):
        before = allocator.free_bytes(6)
        with pytest.raises(AllocationError):
            allocator.allocate(8 * GiB, cpu_node=0, binding=MemBinding.bind(6))
        assert allocator.free_bytes(6) == before

    def test_bind_spans_multiple_bound_nodes(self, allocator):
        free6 = allocator.free_bytes(6)
        allocation = allocator.allocate(
            free6 + 16 * MiB, cpu_node=0, binding=MemBinding.bind(6, 5)
        )
        assert set(allocation.nodes) == {5, 6}


class TestInterleave:
    def test_even_split(self, allocator):
        allocation = allocator.allocate(
            64 * MiB, cpu_node=0, binding=MemBinding.interleave(0, 1, 2, 3)
        )
        sizes = [allocation.bytes_by_node[n] for n in (0, 1, 2, 3)]
        assert max(sizes) - min(sizes) <= PAGE_BYTES

    def test_interleave_fails_atomically(self, allocator):
        befores = {n: allocator.free_bytes(n) for n in (4, 5)}
        with pytest.raises(AllocationError):
            allocator.allocate(
                16 * GiB, cpu_node=0, binding=MemBinding.interleave(4, 5)
            )
        assert {n: allocator.free_bytes(n) for n in (4, 5)} == befores

    def test_interleave_counts_hits(self, allocator):
        allocator.allocate(
            8 * MiB, cpu_node=0, binding=MemBinding.interleave(1, 2)
        )
        assert allocator.stats.interleave_hit[1] > 0
        assert allocator.stats.interleave_hit[2] > 0


class TestPreferred:
    def test_preferred_falls_back(self, allocator):
        free = allocator.free_bytes(4)
        allocator.allocate(free, cpu_node=4, binding=MemBinding.bind(4))
        allocation = allocator.allocate(
            16 * MiB, cpu_node=0, binding=MemBinding.preferred(4)
        )
        assert 4 not in allocation.nodes  # fell back without failing


class TestRelease:
    def test_release_restores_free(self, allocator):
        before = allocator.free_bytes(2)
        allocation = allocator.allocate(
            128 * MiB, cpu_node=2, binding=MemBinding.bind(2)
        )
        assert allocator.free_bytes(2) < before
        allocator.release(allocation)
        assert allocator.free_bytes(2) == before

    def test_double_free_detected(self, allocator):
        allocation = allocator.allocate(
            128 * MiB, cpu_node=2, binding=MemBinding.bind(2)
        )
        allocator.release(allocation)
        with pytest.raises(AllocationError):
            allocator.release(allocation)


class TestNode0Anomaly:
    def test_node0_has_least_free_memory(self, allocator, host):
        # The paper's `numactl --hardware` observation: ~1.5 GB free on
        # node 0, ~4 GB elsewhere.
        frees = {n: allocator.free_bytes(n) for n in host.node_ids}
        assert min(frees, key=frees.get) == 0
        assert frees[0] == pytest.approx(1.5 * GiB, rel=0.01)

    def test_zero_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate(0, cpu_node=0)

    def test_unknown_cpu_node_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate(4096, cpu_node=42)
