"""Experiment result types and the id -> runner registry."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import ReproError
from repro.obs import recorder as _obs

__all__ = [
    "Check",
    "ExperimentResult",
    "EXPERIMENTS",
    "normalize_experiment_id",
    "get_experiment",
    "run_experiment",
    "list_experiments",
]


@dataclass(frozen=True)
class Check:
    """One shape assertion against the paper (e.g. 'class order holds')."""

    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        """``[PASS] name — detail``."""
        status = "PASS" if self.ok else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{status}] {self.name}{suffix}"


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    checks: tuple[Check, ...] = ()

    @property
    def passed(self) -> bool:
        """True when every shape check passed."""
        return all(c.ok for c in self.checks)

    def failed_checks(self) -> tuple[Check, ...]:
        """The checks that did not hold."""
        return tuple(c for c in self.checks if not c.ok)

    def render(self) -> str:
        """Full text: body plus the check list."""
        parts = [f"=== {self.exp_id}: {self.title} ===", self.text]
        if self.checks:
            parts.append("Shape checks vs paper:")
            parts.extend("  " + c.render() for c in self.checks)
        return "\n".join(parts)


class ExperimentFn(Protocol):
    """Signature every experiment runner satisfies."""

    def __call__(self, machine=None, registry=None, quick: bool = False) -> ExperimentResult: ...


#: id -> (module, attribute).  Modules import lazily so ``import repro``
#: stays fast and a broken experiment doesn't take down the registry.
_EXPERIMENT_LOCATIONS: dict[str, tuple[str, str]] = {
    "t1": ("repro.experiments.table1", "run"),
    "t2": ("repro.experiments.configs", "run_table2"),
    "t3": ("repro.experiments.configs", "run_table3"),
    "f3": ("repro.experiments.fig3", "run"),
    "f4": ("repro.experiments.fig4", "run"),
    "f5": ("repro.experiments.fig5", "run"),
    "f6": ("repro.experiments.fig6", "run"),
    "f7": ("repro.experiments.fig7", "run"),
    "f10": ("repro.experiments.fig10", "run"),
    "t4": ("repro.experiments.table4", "run"),
    "t5": ("repro.experiments.table5", "run"),
    "eq1": ("repro.experiments.eq1", "run"),
    "s1": ("repro.experiments.scheduler", "run"),
    "a1": ("repro.experiments.ablation_inference", "run"),
    "a2": ("repro.experiments.ablation_mismatch", "run"),
    "a3": ("repro.experiments.ablation_cost", "run"),
    "a4": ("repro.experiments.ablation_baselines", "run"),
    "a5": ("repro.experiments.ablation_irq", "run"),
    "a6": ("repro.experiments.ablation_sensitivity", "run"),
    "fw1": ("repro.experiments.futurework_migration", "run"),
    "fw2": ("repro.experiments.futurework_contention", "run"),
}

EXPERIMENTS: tuple[str, ...] = tuple(_EXPERIMENT_LOCATIONS)


def normalize_experiment_id(exp_id: str) -> str:
    """Canonical registry id for ``exp_id``, accepting long-form aliases.

    ``fig10``/``figure10`` mean ``f10``, ``table4`` means ``t4``; exact
    ids pass through unchanged (so ``fw1`` is never rewritten).
    """
    key = exp_id.lower()
    if key in _EXPERIMENT_LOCATIONS:
        return key
    for prefix, short in (("figure", "f"), ("fig", "f"), ("table", "t")):
        if key.startswith(prefix):
            alias = short + key[len(prefix):]
            if alias in _EXPERIMENT_LOCATIONS:
                return alias
    return key


def get_experiment(exp_id: str) -> ExperimentFn:
    """The runner for ``exp_id``; raises on unknown ids."""
    key = normalize_experiment_id(exp_id)
    if key not in _EXPERIMENT_LOCATIONS:
        raise ReproError(
            f"unknown experiment {exp_id!r}; known ids: {', '.join(EXPERIMENTS)}"
        )
    module_name, attr = _EXPERIMENT_LOCATIONS[key]
    return getattr(importlib.import_module(module_name), attr)


def run_experiment(exp_id: str, machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    key = normalize_experiment_id(exp_id)
    runner = get_experiment(key)
    with _obs.span("experiment." + key, quick=quick):
        return runner(machine=machine, registry=registry, quick=quick)


def list_experiments() -> dict[str, str]:
    """id -> title for every registered experiment (runs nothing heavy)."""
    out = {}
    for exp_id in EXPERIMENTS:
        module_name, attr = _EXPERIMENT_LOCATIONS[exp_id]
        module = importlib.import_module(module_name)
        title = getattr(module, f"TITLE_{attr.upper()}", None) or getattr(
            module, "TITLE", module.__doc__ or exp_id
        )
        out[exp_id] = title.strip().splitlines()[0]
    return out
