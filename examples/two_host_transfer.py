#!/usr/bin/env python3
"""Two-host transfers: both ends' NUMA placement at once.

The paper's testbed (Fig. 2) is two identical hosts back to back over
40 GbE, but its sweeps vary only one side at a time.  The
:mod:`repro.cluster` layer composes sender-side and receiver-side
service with the wire, so this example can ask the questions the paper
could not:

* how do the one-sided sweeps look through the two-host model (they
  must match Figs. 5/6 — and do);
* what happens when *both* ends are mis-placed;
* when is the wire, rather than NUMA, the bottleneck.

Run:  python examples/two_host_transfer.py
"""

from repro import reference_host
from repro.cluster import EthernetLink, NetJob, TwoHostSystem

def main() -> None:
    system = TwoHostSystem(reference_host(), reference_host())
    print(f"link: {system.link}\n")

    # --- the paper's protocols through the two-host model ----------------
    for engine in ("tcp", "rdma"):
        job = NetJob(name=f"2h-{engine}", engine=engine, numjobs=4)
        sender = {
            n: r.aggregate_gbps for n, r in system.sweep_sender(job).items()
        }
        receiver = {
            n: r.aggregate_gbps for n, r in system.sweep_receiver(job).items()
        }
        print(f"{engine.upper()} sender sweep (receiver well tuned):")
        print("  " + "  ".join(f"n{n}:{v:5.1f}" for n, v in sorted(sender.items())))
        print(f"{engine.upper()} receiver sweep (sender well tuned):")
        print("  " + "  ".join(f"n{n}:{v:5.1f}" for n, v in sorted(receiver.items())))
        print()

    # --- what the paper could not measure: both ends mis-placed ----------
    print("both ends mis-placed (TCP, 4 streams):")
    combos = [(6, 6), (2, 6), (6, 4), (2, 4)]
    for s, r in combos:
        result = system.run(
            NetJob(name=f"2h-s{s}r{r}", engine="tcp", numjobs=4,
                   sender_node=s, receiver_node=r)
        )
        print(f"  sender n{s}, receiver n{r}: {result.aggregate_gbps:5.2f} Gbps")
    print("  -> the worse end dominates; penalties do not stack.")

    # --- when the wire is the bottleneck ---------------------------------
    print("\nsame transfer over a 10 GbE cable:")
    slow = TwoHostSystem(
        reference_host(), reference_host(), link=EthernetLink(raw_gbps=10.0)
    )
    for s in (6, 2):
        result = slow.run(
            NetJob(name=f"slow-s{s}", engine="tcp", numjobs=4, sender_node=s)
        )
        print(f"  sender n{s}: {result.aggregate_gbps:5.2f} Gbps")
    print(
        "  -> behind a slow wire, NUMA placement stops mattering — the "
        "paper's effects need the device faster than the fabric penalty."
    )


if __name__ == "__main__":
    main()
