"""The persistent worker pool over shared-memory machine arenas.

:class:`FabricPool` is the process fan-out layer of the reproduction:
it shards characterization sweeps (`build_many` / `characterize_many` /
`bulk_copy_gbps_many`), runs experiment batches, and serves as the
service's process-pool solver tier (`build_model`) — all against
machines that workers **map** from a shared-memory arena instead of
unpickling per task.

Determinism contract (the one the smoke script gates): a sharded run is
bit-identical to the serial run.  Three properties make that true:

* every worker draws from a registry built with the **same root seed**
  as the parent's — named streams are derived position-independently
  from ``(seed, name)`` and restart on every request, so the process
  that draws a stream cannot change its values (``RngRegistry.child``
  would *re-seed* the namespace and is exactly what sharding must not
  do);
* shards are contiguous slices merged in shard order
  (:mod:`repro.fabric.shard`), so merged dicts keep serial insertion
  order and merged ledgers equal the serial ledger;
* telemetry is capture-and-graft (:mod:`repro.fabric.telemetry`), so
  recording changes what is observed, never what is computed — in any
  process.

Failure model: a SIGKILLed worker breaks the executor
(``BrokenProcessPool``); the pool rebuilds it and re-dispatches only the
shards whose results were lost, up to ``retries`` times.  Experiment
batches opt out of retry (``run_experiments``) and degrade to
structured "crashed" rows instead, preserving the CLI's historical
semantics.  Workers never own arena segments, so no crash can leak
``/dev/shm``; a SIGKILLed *parent* can, which is why pool startup reaps
dead-owner orphans (:func:`repro.fabric.arena.reap_orphans`).

Checkpoint/resume: the sweep methods accept a
:class:`~repro.journal.RunJournal`.  Journaled dispatch is
unit-granular (one target / one experiment per task, independent of
``jobs``); each completed unit's envelope — result, RNG draw ledger,
captured telemetry — is appended to the journal the moment it lands,
and already-journaled units are replayed instead of re-run.  Because
merge order is unit order, never completion order, a resumed run's
merged results, absorbed ledgers, and grafted telemetry are identical
to an uninterrupted run's.
"""

from __future__ import annotations

import os
import signal
import time
from collections import OrderedDict

from repro.errors import FabricError
from repro.fabric import arena as _arena
from repro.fabric import telemetry as _telemetry
from repro.fabric.shard import merge_in_order, plan_shards
from repro.obs import recorder as _obs
from repro.rng import DEFAULT_SEED, RngRegistry
from repro.solver.capacity import machine_fingerprint

__all__ = ["FabricPool"]

#: Worker-side LRU bounds (machines/arenas and memoized models).
_WORKER_MACHINE_LIMIT = 16
_WORKER_MODEL_LIMIT = 32

#: Worker-side caches, living in each worker process.
_WORKER_MACHINES: "OrderedDict[str, tuple]" = OrderedDict()
_WORKER_MODELS: "OrderedDict[tuple, object]" = OrderedDict()

#: Whether this worker already served its injected stall (one per
#: process; armed by ``repro.faults.execution.WorkerStall``).
_WORKER_STALLED = False


def _worker_init() -> None:
    """Reset fabric state a forked worker inherited from its parent.

    Forked workers carry copies of the parent's arena registry and
    session cache.  Those handles must be neutralised — the parent owns
    every published segment, and a worker's exit sweep must never close
    (let alone unlink) them through an inherited handle.
    """
    for inherited in _arena._ARENAS.values():
        inherited.owner = False
        inherited.closed = True
    _arena._ARENAS.clear()
    from repro.solver.session import _SESSIONS

    for session in _SESSIONS.values():
        session._arena = None
    _SESSIONS.clear()
    _WORKER_MACHINES.clear()
    _WORKER_MODELS.clear()
    _obs.uninstall()


def _resolve_machine(ref: dict):
    """The worker's machine for one task ref: arena-mapped, else rebuilt.

    Cached per fingerprint; an arena-backed machine's solver session is
    attached to the arena so capacities come from the mapped bytes.
    """
    fingerprint = ref["fingerprint"]
    entry = _WORKER_MACHINES.get(fingerprint)
    if entry is not None:
        _WORKER_MACHINES.move_to_end(fingerprint)
        return entry[0]
    arena = _arena.attach(ref["segment"]) if ref.get("segment") else None
    if arena is not None:
        arena.acquire()
        machine = arena.machine()
        from repro.solver.session import get_session

        get_session(machine).attach_arena(arena)
    else:
        from repro.topology.serialize import machine_from_dict

        machine = machine_from_dict(ref["machine"])
        try:
            machine._solver_fingerprint = fingerprint
        except AttributeError:  # pragma: no cover - exotic subclasses
            pass
    _WORKER_MACHINES[fingerprint] = (machine, arena)
    while len(_WORKER_MACHINES) > _WORKER_MACHINE_LIMIT:
        _fp, (_m, old_arena) = _WORKER_MACHINES.popitem(last=False)
        if old_arena is not None:
            old_arena.release()
    return machine


def _run_kind(kind: str, machine, registry, payload: dict):
    """Dispatch one task body inside the worker."""
    if kind == "build_many":
        from repro.core.iomodel import IOModelBuilder

        builder = IOModelBuilder(machine, registry=registry,
                                 **payload["builder"])
        return builder.build_many(tuple(payload["targets"]), payload["mode"])
    if kind == "characterize_many":
        from repro.core.characterize import HostCharacterizer

        characterizer = HostCharacterizer(machine, registry=registry,
                                          **payload["builder"])
        return characterizer.characterize_many(tuple(payload["targets"]))
    if kind == "bulk_copy":
        from repro.bench.engines import bulk_copy_gbps_many

        return bulk_copy_gbps_many(
            machine, [tuple(p) for p in payload["pairs"]], payload["threads"]
        )
    if kind == "build_model":
        from repro.core.iomodel import IOModelBuilder

        key = (
            machine_fingerprint(machine), payload["target"], payload["mode"],
            registry.seed, tuple(sorted(payload["builder"].items())),
        )
        model = _WORKER_MODELS.get(key)
        if model is None:
            builder = IOModelBuilder(machine, registry=registry,
                                     **payload["builder"])
            model = builder.build(payload["target"], payload["mode"])
            _WORKER_MODELS[key] = model
            while len(_WORKER_MODELS) > _WORKER_MODEL_LIMIT:
                _WORKER_MODELS.popitem(last=False)
        else:
            _WORKER_MODELS.move_to_end(key)
        return model
    if kind == "experiment":
        import time

        from repro.experiments import run_experiment

        exp_id = payload["exp_id"]
        if os.environ.get("REPRO_CHAOS_KILL_EXPERIMENT") == exp_id:
            # Test hook: die exactly like a worker hit by the OOM
            # killer, so crash handling can be exercised for real.
            os.kill(os.getpid(), signal.SIGKILL)
        start = time.perf_counter()
        result = run_experiment(exp_id, quick=payload["quick"])
        wall_s = time.perf_counter() - start
        failed_lines = [c.render() for c in result.failed_checks()]
        return (exp_id, result.passed, result.title, result.render(),
                failed_lines, wall_s)
    if kind == "ping":
        return machine.name if machine is not None else None
    raise FabricError(f"unknown fabric task kind {kind!r}")


def _worker_run(task: dict) -> dict:
    """Execute one task envelope in a worker process.

    Returns plain data only: the task result, the worker registry's
    draw ledger, and (when the parent was recording) the captured
    telemetry payload.
    """
    global _WORKER_STALLED
    if not _WORKER_STALLED:
        _WORKER_STALLED = True
        # "REPRO_FABRIC_STALL" == repro.faults.execution.STALL_ENV, kept
        # as a literal so workers never import the fault taxonomy.
        stall = os.environ.get("REPRO_FABRIC_STALL")
        if stall:
            try:
                time.sleep(min(60.0, float(stall)))
            except ValueError:
                pass
    marker = os.environ.get("REPRO_FABRIC_KILL_ONCE")
    if marker:
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass  # a previous incarnation already died here
        except OSError:
            # Uncreatable marker: nowhere to record the death, so every
            # incarnation dies — the "pool never recovers" chaos mode.
            os.kill(os.getpid(), signal.SIGKILL)
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    recorder = _telemetry.begin_capture(task["telemetry"])
    baseline = None
    if recorder is not None:
        from repro.obs.stats import solver_totals

        baseline = solver_totals()
    try:
        machine = (
            _resolve_machine(task["machine_ref"])
            if task.get("machine_ref") else None
        )
        registry = RngRegistry(task["seed"])
        result = _run_kind(task["kind"], machine, registry, task["payload"])
        draws = registry.draw_counts
    finally:
        captured = _telemetry.end_capture(recorder, baseline)
    return {"result": result, "draws": draws, "telemetry": captured}


class FabricPool:
    """A persistent process pool dispatching over shared-memory arenas.

    Parameters
    ----------
    jobs:
        Worker process count (also the default shard count).
    seed:
        Root seed workers derive their registries from when the caller
        passes no registry of its own.
    retries:
        How many times a broken pool is rebuilt and lost shards
        re-dispatched before giving up.
    mp_context:
        Optional :mod:`multiprocessing` context (tests pin ``fork``).

    The pool is lazy (workers start on first dispatch), reusable across
    machines (tasks carry their arena ref), and must be closed —
    ``close()`` or the context-manager form — to shut workers down and
    release published arenas promptly.  Segments can never outlive the
    process even without it: the arena layer's atexit sweep owns that.
    """

    def __init__(self, jobs: int = 2, seed: int = DEFAULT_SEED,
                 retries: int = 2, mp_context=None) -> None:
        if jobs < 1:
            raise FabricError(f"need >= 1 worker, got {jobs}")
        if retries < 0:
            raise FabricError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.seed = int(seed)
        self.retries = retries
        self._mp_context = mp_context
        self._executor = None
        self._arenas: "OrderedDict[str, _arena.MachineArena]" = OrderedDict()
        self.dispatched = 0
        self.completed = 0
        self.retried = 0
        self.abandoned = 0
        self.closed = False
        #: Optional :class:`repro.obs.live.LivePlane` — when the
        #: placement service grafts one on, ``build_model`` records its
        #: wall-clock dispatch latency into ``fabric.dispatch``.
        self.live = None
        # A SIGKILLed predecessor never ran its atexit sweep; clear its
        # dead-owner segments before publishing under the same names.
        try:
            _arena.reap_orphans()
        except Exception:  # pragma: no cover - never fail pool startup
            pass

    # --- lifecycle --------------------------------------------------------
    def _ensure_executor(self):
        if self.closed:
            raise FabricError("fabric pool is closed")
        if self._executor is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = self._mp_context or multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=_worker_init,
            )
        return self._executor

    def _rebuild_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the workers down and release every published arena."""
        if self.closed:
            return
        self.closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        for arena in self._arenas.values():
            arena.release()
        self._arenas.clear()

    def __enter__(self) -> "FabricPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # --- accounting -------------------------------------------------------
    def note_abandoned(self) -> None:
        """Record a deadline-abandoned solve (the worker slot stays busy
        until the orphaned task finishes; nobody reads its result)."""
        self.abandoned += 1
        _obs.count("fabric.abandoned")

    def stats(self) -> dict:
        """JSON-able pool accounting (service ``health`` payloads)."""
        return {
            "jobs": self.jobs,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "retried": self.retried,
            "abandoned": self.abandoned,
            "arenas": len(self._arenas),
        }

    # --- dispatch core ----------------------------------------------------
    def _machine_ref(self, machine) -> dict:
        """The task-side handle for ``machine``: arena name, or its
        serialized form when no arena can be published."""
        if getattr(machine.routing, "_overrides", None):
            raise FabricError(
                f"machine {machine.name!r} has routing overrides; the "
                f"fabric cannot reproduce them in workers — run serially"
            )
        fingerprint = machine_fingerprint(machine)
        arena = self._arenas.get(fingerprint)
        if arena is not None and not arena.closed:
            self._arenas.move_to_end(fingerprint)
            return {"fingerprint": fingerprint, "segment": arena.name}
        try:
            arena = _arena.get_arena(machine)
        except FabricError:
            arena = None  # no usable shared memory: ship the description
        if arena is None:
            from repro.topology.serialize import machine_to_dict

            return {
                "fingerprint": fingerprint,
                "segment": None,
                "machine": machine_to_dict(machine),
            }
        self._arenas[fingerprint] = arena
        while len(self._arenas) > _WORKER_MACHINE_LIMIT:
            _fp, old = self._arenas.popitem(last=False)
            old.release()
        return {"fingerprint": fingerprint, "segment": arena.name}

    def _task(self, kind: str, machine_ref, seed: int, payload: dict) -> dict:
        return {
            "kind": kind,
            "machine_ref": machine_ref,
            "seed": seed,
            "telemetry": _obs.enabled(),
            "payload": payload,
        }

    def _run_tasks(self, tasks: "list[dict]", on_result=None) -> "list[dict]":
        """Dispatch tasks, retrying shards lost to a broken pool.

        ``on_result(index, envelope)`` fires exactly once per task, in
        submission order, the moment its result is in hand — the
        journal's append hook, so a completed unit is durable even if
        the parent dies before the batch finishes.
        """
        from concurrent.futures.process import BrokenProcessPool

        results: "list[dict | None]" = [None] * len(tasks)
        pending = list(range(len(tasks)))
        attempt = 0
        while pending:
            executor = self._ensure_executor()
            futures = [(i, executor.submit(_worker_run, tasks[i]))
                       for i in pending]
            self.dispatched += len(futures)
            lost: list[int] = []
            for i, future in futures:
                try:
                    results[i] = future.result()
                    self.completed += 1
                    if on_result is not None:
                        on_result(i, results[i])
                except BrokenProcessPool:
                    lost.append(i)
            if lost:
                self._rebuild_executor()
                attempt += 1
                if attempt > self.retries:
                    raise FabricError(
                        f"worker pool broke {attempt} times; "
                        f"{len(lost)} shard(s) unrecovered"
                    )
                self.retried += len(lost)
            pending = lost
        return results  # type: ignore[return-value]

    def _run_journaled(self, journal, keys: "list[tuple]",
                       make_task) -> "list[dict]":
        """Unit-granular dispatch against a :class:`RunJournal`.

        ``keys[i]`` identifies unit ``i``; ``make_task(i)`` builds its
        task envelope.  Journaled units are replayed from their stored
        envelopes; the rest run, each appended — result, draw ledger,
        telemetry — as soon as it completes.  The returned envelope
        list is in unit order either way.
        """
        envelopes: "list[dict | None]" = [None] * len(keys)
        missing: "list[int]" = []
        for i, key in enumerate(keys):
            record = journal.get(key)
            if record is not None:
                envelopes[i] = {
                    "result": record["result"],
                    "draws": record["draws"],
                    "telemetry": record["telemetry"],
                }
            else:
                missing.append(i)

        def persist(j: int, env: dict) -> None:
            journal.append(
                keys[missing[j]],
                result=env["result"],
                draws=env["draws"],
                telemetry=env["telemetry"],
            )

        fresh = self._run_tasks(
            [make_task(i) for i in missing], on_result=persist
        )
        for j, env in zip(missing, fresh):
            envelopes[j] = env
        return envelopes  # type: ignore[return-value]

    def _merge(self, envelopes: "list[dict]", registry, label: str) -> None:
        """Fold draw ledgers and grafted telemetry back, in task order."""
        recording = _obs.enabled()
        for idx, env in enumerate(envelopes):
            if registry is not None and env["draws"]:
                registry.absorb(env["draws"])
            if recording and env.get("telemetry") is not None:
                _telemetry.graft(
                    _obs.get_recorder(), env["telemetry"],
                    label=label, shard=idx,
                )

    # --- sharded sweeps ---------------------------------------------------
    def build_many(self, machine, targets, mode: str,
                   registry: "RngRegistry | None" = None,
                   journal=None, **builder_kwargs) -> dict:
        """Sharded :meth:`~repro.core.iomodel.IOModelBuilder.build_many`.

        Bit-identical to the serial call with the same registry seed;
        the caller's ``registry`` (when given) supplies the seed and
        absorbs the merged draw ledger.  With ``journal``, dispatch is
        one target per task (so resume granularity is independent of
        ``jobs``) and completed targets are replayed, not re-run.
        """
        targets = tuple(targets)
        seed = registry.seed if registry is not None else self.seed
        ref = self._machine_ref(machine)
        if journal is not None:
            envelopes = self._run_journaled(
                journal,
                [("build_many", mode, int(t)) for t in targets],
                lambda i: self._task("build_many", ref, seed, {
                    "targets": (targets[i],),
                    "mode": mode,
                    "builder": dict(builder_kwargs),
                }),
            )
        else:
            tasks = [
                self._task("build_many", ref, seed, {
                    "targets": targets[start:stop],
                    "mode": mode,
                    "builder": dict(builder_kwargs),
                })
                for start, stop in plan_shards(len(targets), self.jobs)
            ]
            envelopes = self._run_tasks(tasks)
        self._merge(envelopes, registry, "fabric.build_many")
        return merge_in_order([env["result"] for env in envelopes])

    def characterize_many(self, machine, nodes,
                          registry: "RngRegistry | None" = None,
                          journal=None, **builder_kwargs) -> dict:
        """Sharded :meth:`~repro.core.characterize.HostCharacterizer.characterize_many`.

        With ``journal``, one node per task and journal-replay of
        completed nodes, exactly like :meth:`build_many`.
        """
        nodes = tuple(nodes)
        seed = registry.seed if registry is not None else self.seed
        ref = self._machine_ref(machine)
        if journal is not None:
            envelopes = self._run_journaled(
                journal,
                [("characterize_many", int(n)) for n in nodes],
                lambda i: self._task("characterize_many", ref, seed, {
                    "targets": (nodes[i],),
                    "builder": dict(builder_kwargs),
                }),
            )
        else:
            tasks = [
                self._task("characterize_many", ref, seed, {
                    "targets": nodes[start:stop],
                    "builder": dict(builder_kwargs),
                })
                for start, stop in plan_shards(len(nodes), self.jobs)
            ]
            envelopes = self._run_tasks(tasks)
        self._merge(envelopes, registry, "fabric.characterize_many")
        return merge_in_order([env["result"] for env in envelopes])

    def bulk_copy_gbps_many(self, machine, pairs, threads: int) -> "list[float]":
        """Sharded :func:`~repro.bench.engines.bulk_copy_gbps_many`."""
        pairs = [tuple(p) for p in pairs]
        ref = self._machine_ref(machine)
        tasks = [
            self._task("bulk_copy", ref, self.seed, {
                "pairs": pairs[start:stop],
                "threads": threads,
            })
            for start, stop in plan_shards(len(pairs), self.jobs)
        ]
        envelopes = self._run_tasks(tasks)
        self._merge(envelopes, None, "fabric.bulk_copy")
        out: "list[float]" = []
        for env in envelopes:
            out.extend(env["result"])
        return out

    # --- experiments ------------------------------------------------------
    def run_experiments(self, exp_ids, quick: bool = False,
                        journal=None) -> "list[tuple]":
        """One experiment per worker task, merged in registry order.

        No transparent retry here: a dead worker degrades to structured
        "crashed" rows (every experiment still reported exactly once)
        and the executor is rebuilt for later dispatches, matching the
        CLI's long-standing crash semantics.  With ``journal``, passed
        experiments are replayed from their records; crashed rows are
        deliberately never journaled, so a resume retries them.
        """
        executor = self._ensure_executor()
        exp_ids = list(exp_ids)
        futures: "dict[str, object]" = {}
        for exp_id in exp_ids:
            if journal is not None and ("experiment", exp_id) in journal:
                continue
            futures[exp_id] = executor.submit(_worker_run, self._task(
                "experiment", None, self.seed,
                {"exp_id": exp_id, "quick": quick},
            ))
        self.dispatched += len(futures)
        outcomes: "list[tuple]" = []
        crashed = False
        for exp_id in exp_ids:
            if exp_id not in futures:
                record = journal.get(("experiment", exp_id))
                envelope = {
                    "result": record["result"],
                    "draws": record["draws"],
                    "telemetry": record["telemetry"],
                }
            else:
                try:
                    envelope = futures[exp_id].result()
                except Exception as exc:  # worker died or pool broke
                    crashed = True
                    reason = (
                        f'status="crashed": experiment {exp_id!r} worker '
                        f"died before returning a result "
                        f"({type(exc).__name__})"
                    )
                    outcomes.append((exp_id, None, "(worker crashed)",
                                     reason, [reason], 0.0))
                    continue
                self.completed += 1
                if journal is not None:
                    journal.append(
                        ("experiment", exp_id),
                        result=envelope["result"],
                        draws=envelope["draws"],
                        telemetry=envelope["telemetry"],
                    )
            self._merge([envelope], None, "fabric.experiment")
            outcomes.append(tuple(envelope["result"]))
        if crashed:
            self._rebuild_executor()
        return outcomes

    # --- the solver tier --------------------------------------------------
    def build_model(self, machine, target: int, mode: str,
                    registry: "RngRegistry | None" = None,
                    **builder_kwargs):
        """Build one Algorithm 1 model in a worker process.

        The service's solver tier: the parent's asyncio loop (and GIL)
        never runs the solve.  Solver failures propagate with their
        original types so the circuit breaker counts them unchanged.
        Workers memoize models per (fingerprint, target, mode, seed,
        builder-config); a memo hit draws nothing, exactly like a
        parent-side cache hit.
        """
        seed = registry.seed if registry is not None else self.seed
        ref = self._machine_ref(machine)
        task = self._task("build_model", ref, seed, {
            "target": target,
            "mode": mode,
            "builder": dict(builder_kwargs),
        })
        if self.live is not None:
            started = time.perf_counter()
            envelopes = self._run_tasks([task])
            self.live.record(
                "fabric.dispatch", time.perf_counter() - started
            )
        else:
            envelopes = self._run_tasks([task])
        self._merge(envelopes, registry, "fabric.build_model")
        return envelopes[0]["result"]
