"""Switched-cluster transfers."""

import pytest

from repro.cluster.fabric import SwitchedCluster, Transfer
from repro.cluster.link import EthernetLink
from repro.errors import BenchmarkError
from repro.rng import RngRegistry
from repro.topology.builders import reference_host


@pytest.fixture(scope="module")
def cluster():
    hosts = {f"h{i}": reference_host() for i in range(4)}
    return SwitchedCluster(hosts, registry=RngRegistry())


class TestTransfers:
    def test_well_tuned_pair_hits_protocol_cap(self, cluster):
        res = cluster.run([Transfer(name="t", src_host="h0", dst_host="h1")])
        assert res["t"].aggregate_gbps == pytest.approx(22.0, rel=0.03)

    def test_disjoint_pairs_run_independently(self, cluster):
        res = cluster.run([
            Transfer(name="a", src_host="h0", dst_host="h1"),
            Transfer(name="b", src_host="h2", dst_host="h3"),
        ])
        assert res["a"].aggregate_gbps == pytest.approx(
            res["b"].aggregate_gbps, rel=0.05
        )
        total = sum(o.aggregate_gbps for o in res.values())
        assert total == pytest.approx(44.0, rel=0.05)

    def test_fan_in_shares_receiver(self, cluster):
        res = cluster.run([
            Transfer(name=f"in{i}", src_host=f"h{i}", dst_host="h3")
            for i in range(3)
        ])
        total = sum(o.aggregate_gbps for o in res.values())
        # The receiver's NIC is the bottleneck: total ~= one transfer.
        assert total == pytest.approx(22.0, rel=0.05)
        # ... shared fairly.
        values = [o.aggregate_gbps for o in res.values()]
        assert max(values) - min(values) < 0.15 * max(values)

    def test_numa_placement_matters_cluster_wide(self, cluster):
        bad = cluster.run([
            Transfer(name="bad", src_host="h0", dst_host="h1", src_node=2)
        ])["bad"].aggregate_gbps
        good = cluster.run([
            Transfer(name="good", src_host="h0", dst_host="h1", src_node=0)
        ])["good"].aggregate_gbps
        assert bad == pytest.approx(17.1, rel=0.05)
        assert good > bad

    def test_backplane_caps_everything(self):
        hosts = {f"h{i}": reference_host() for i in range(4)}
        narrow = SwitchedCluster(hosts, backplane_gbps=30.0,
                                 registry=RngRegistry())
        res = narrow.run([
            Transfer(name="a", src_host="h0", dst_host="h1"),
            Transfer(name="b", src_host="h2", dst_host="h3"),
        ])
        total = sum(o.aggregate_gbps for o in res.values())
        assert total <= 30.0 * 1.01

    def test_slow_uplink_caps_single_host(self):
        hosts = {f"h{i}": reference_host() for i in range(2)}
        slow = SwitchedCluster(hosts, uplink=EthernetLink(raw_gbps=10.0),
                               registry=RngRegistry())
        res = slow.run([Transfer(name="t", src_host="h0", dst_host="h1")])
        assert res["t"].aggregate_gbps <= 10.0


class TestValidation:
    def test_needs_two_hosts(self):
        with pytest.raises(BenchmarkError):
            SwitchedCluster({"h0": reference_host()})

    def test_nic_required(self):
        hosts = {"h0": reference_host(), "h1": reference_host(with_devices=False)}
        with pytest.raises(BenchmarkError):
            SwitchedCluster(hosts)

    def test_self_transfer_rejected(self):
        with pytest.raises(BenchmarkError):
            Transfer(name="t", src_host="h0", dst_host="h0")

    def test_unknown_host_rejected(self, cluster):
        with pytest.raises(BenchmarkError):
            cluster.run([Transfer(name="t", src_host="h0", dst_host="zz")])

    def test_duplicate_names_rejected(self, cluster):
        with pytest.raises(BenchmarkError):
            cluster.run([
                Transfer(name="t", src_host="h0", dst_host="h1"),
                Transfer(name="t", src_host="h2", dst_host="h3"),
            ])

    def test_empty_rejected(self, cluster):
        with pytest.raises(BenchmarkError):
            cluster.run([])


class TestFaultPlans:
    def _transfer(self, size=4e9):
        return Transfer(name="t", src_host="h0", dst_host="h1", numjobs=2,
                        size_bytes=size)

    def test_empty_plan_behaves_healthy(self, cluster):
        from repro.faults.plan import FaultPlan

        healthy = cluster.run([self._transfer()])["t"]
        degraded = cluster.run([self._transfer()], fault_plan=FaultPlan())["t"]
        assert degraded.status == "ok"
        assert degraded.retries == 0 and degraded.reroutes == 0
        assert degraded.aggregate_gbps == pytest.approx(
            healthy.aggregate_gbps, rel=1e-6
        )

    def test_flap_window_recovers(self, cluster):
        from repro.faults.events import FaultEvent, NicPortFlap
        from repro.faults.plan import FaultPlan

        plan = FaultPlan([
            FaultEvent(NicPortFlap(host="h0"), at_s=0.2, until_s=0.7)
        ])
        outcome = cluster.run([self._transfer()], fault_plan=plan)["t"]
        assert outcome.status == "recovered"
        assert outcome.retries > 0
        assert outcome.reason is None

    def test_permanent_outage_fails_with_reason(self, cluster):
        from repro.faults.events import FaultEvent, NicPortFlap
        from repro.faults.plan import FaultPlan

        plan = FaultPlan([FaultEvent(NicPortFlap(host="h0"), at_s=0.2)])
        outcome = cluster.run([self._transfer()], fault_plan=plan)["t"]
        assert outcome.status == "failed"
        assert outcome.reason is not None and "retries" in outcome.reason
        # Partial progress still reported, not an exception.
        assert outcome.aggregate_gbps > 0

    def test_unaffected_transfer_stays_ok(self, cluster):
        from repro.faults.events import FaultEvent, NicPortFlap
        from repro.faults.plan import FaultPlan

        plan = FaultPlan([FaultEvent(NicPortFlap(host="h0"), at_s=0.2)])
        outcomes = cluster.run(
            [
                self._transfer(),
                Transfer(name="u", src_host="h2", dst_host="h3", numjobs=2,
                         size_bytes=4e9),
            ],
            fault_plan=plan,
        )
        assert outcomes["t"].status == "failed"
        assert outcomes["u"].status == "ok"
