"""README code blocks must actually run.

Extracts every ```python fenced block from README.md and executes it in
one shared namespace (later blocks may use earlier blocks' names).
"""

from __future__ import annotations

import re
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def test_readme_python_blocks_execute(capsys):
    text = README.read_text(encoding="utf-8")
    blocks = _BLOCK_RE.findall(text)
    assert blocks, "README has no python blocks to verify"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic path
            raise AssertionError(
                f"README python block {i} failed: {exc}\n---\n{block}"
            ) from exc
    # The quickstart block prints a model table and a prediction.
    out = capsys.readouterr().out
    assert "Class 1" in out


def test_readme_mentions_real_experiment_ids():
    from repro.experiments import EXPERIMENTS

    text = README.read_text(encoding="utf-8")
    for exp_id in ("t1", "f10", "eq1", "fw2"):
        assert exp_id in EXPERIMENTS
        assert f"`{exp_id}`" in text or exp_id in text
