"""hwloc-style rendering."""

from repro.topology.hwloc import render_links, render_machine


class TestRenderMachine:
    def test_mentions_every_node(self, host):
        text = render_machine(host)
        for nid in host.node_ids:
            assert f"NUMANode N{nid}" in text

    def test_mentions_packages_and_devices(self, host):
        text = render_machine(host)
        assert "Package P0" in text
        assert "nic" in text
        assert "ssd" in text

    def test_node0_shows_less_free_memory(self, host):
        text = render_machine(host)
        node0_line = next(l for l in text.splitlines() if "NUMANode N0" in l)
        node3_line = next(l for l in text.splitlines() if "NUMANode N3" in l)
        assert "1.5 GiB free" in node0_line
        assert "3.8 GiB free" in node3_line


class TestRenderLinks:
    def test_lists_every_directed_link(self, host):
        text = render_links(host)
        # 22 directed links + header.
        assert len(text.splitlines()) == len(host.links) + 1

    def test_shows_widths(self, host):
        assert "x16" in render_links(host)
