"""FioRunner orchestration."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob, parse_jobfile
from repro.rng import RngRegistry


class TestRun:
    def test_dispatch_by_engine(self, runner):
        net = runner.run(FioJob(name="n", engine="rdma", rw="write",
                                numjobs=2, cpunodebind=5))
        mem = runner.run(FioJob(name="m", engine="memcpy", rw="write",
                                numjobs=4, cpunodebind=5, target_node=7))
        assert net.engine == "rdma:write"
        assert mem.engine == "memcpy:write"

    def test_deterministic_across_runners(self, host):
        job = FioJob(name="d", engine="tcp", rw="send", numjobs=4, cpunodebind=3)
        a = FioRunner(host, RngRegistry(5)).run(job).aggregate_gbps
        b = FioRunner(host, RngRegistry(5)).run(job).aggregate_gbps
        assert a == b

    def test_run_idx_changes_noise(self, runner):
        job = FioJob(name="d", engine="tcp", rw="send", numjobs=4, cpunodebind=3)
        a = runner.run(job, run_idx=0).aggregate_gbps
        b = runner.run(job, run_idx=1).aggregate_gbps
        assert a != b

    def test_run_jobs_from_file(self, runner):
        jobs = parse_jobfile(
            """
            [global]
            numjobs=2
            [w]
            ioengine=rdma
            rw=write
            cpunodebind=6
            [r]
            ioengine=rdma
            rw=read
            cpunodebind=6
            """
        )
        results = runner.run_jobs(jobs)
        assert [r.job_name for r in results] == ["w", "r"]


class TestSweeps:
    def test_sweep_nodes(self, runner, host):
        job = FioJob(name="s", engine="rdma", rw="write", numjobs=2)
        results = runner.sweep_nodes(job, nodes=(0, 7))
        assert set(results) == {0, 7}
        assert all(r.streams[0][0] == node for node, r in results.items())

    def test_sweep_numjobs(self, runner):
        job = FioJob(name="s", engine="tcp", rw="send", cpunodebind=5)
        results = runner.sweep_numjobs(job, (1, 2, 4))
        assert set(results) == {1, 2, 4}
        assert results[4].numjobs == 4

    def test_grid(self, runner):
        job = FioJob(name="g", engine="rdma", rw="write")
        grid = runner.grid(job, nodes=(5, 6), counts=(1, 2))
        assert set(grid) == {5, 6}
        assert set(grid[5]) == {1, 2}

    def test_tcp_saturation_shape(self, runner):
        # The Fig. 5 shape: ~2x from 1 to 2 streams, plateau at 4+.
        job = FioJob(name="shape", engine="tcp", rw="send", cpunodebind=6)
        results = runner.sweep_numjobs(job, (1, 2, 4, 8))
        agg = {n: r.aggregate_gbps for n, r in results.items()}
        assert agg[2] == pytest.approx(2 * agg[1], rel=0.1)
        assert agg[4] > 1.3 * agg[2]
        assert agg[8] == pytest.approx(agg[4], rel=0.15)
