"""Device-attachment planner."""

import pytest

from repro.analysis.planner import DeviceAttachmentPlanner
from repro.errors import ModelError
from repro.topology.builders import parametric_machine


@pytest.fixture()
def planner(bare_host):
    return DeviceAttachmentPlanner(bare_host)


class TestScores:
    def test_score_is_uniform_eq1(self, planner, bare_host):
        import numpy as np

        score = planner.score(7)
        expected = float(
            np.mean([bare_host.dma_path_gbps(i, 7) for i in bare_host.node_ids])
        )
        assert score.write_mean_gbps == pytest.approx(expected)

    def test_worst_not_above_mean(self, planner, bare_host):
        for node in bare_host.node_ids:
            s = planner.score(node)
            assert s.write_worst_gbps <= s.write_mean_gbps
            assert s.read_worst_gbps <= s.read_mean_gbps

    def test_rank_is_sorted(self, planner):
        ranked = planner.rank()
        combined = [s.combined_gbps for s in ranked]
        assert combined == sorted(combined, reverse=True)
        assert planner.best() == ranked[0]

    def test_weights_shift_ranking(self, bare_host):
        write_heavy = DeviceAttachmentPlanner(bare_host, write_weight=1.0)
        read_heavy = DeviceAttachmentPlanner(bare_host, write_weight=0.0)
        # Node 2's write paths are strong (everything reaches it well)
        # while its read side is crippled (2->7 style starvation is on
        # the request side), so the two extremes must disagree.
        assert write_heavy.rank() != read_heavy.rank()

    def test_symmetric_machine_scores_tie(self):
        machine = parametric_machine(3, nodes_per_package=1, cores_per_node=2)
        ranked = DeviceAttachmentPlanner(machine).rank()
        assert ranked[0].combined_gbps == pytest.approx(
            ranked[-1].combined_gbps, rel=0.01
        )
        # Ties break to the lowest node id.
        assert ranked[0].node == 0


class TestClassesAndValidation:
    def test_classes_for_matches_classify(self, planner, bare_host):
        classes = planner.classes_for(7, "write")
        assert [sorted(c.node_ids) for c in classes] == [
            [6, 7], [0, 1, 4, 5], [2, 3]
        ]

    def test_bad_mode_rejected(self, planner):
        with pytest.raises(ModelError):
            planner.classes_for(7, "sideways")

    def test_bad_node_rejected(self, planner):
        with pytest.raises(ModelError):
            planner.score(42)

    def test_bad_weight_rejected(self, bare_host):
        with pytest.raises(ModelError):
            DeviceAttachmentPlanner(bare_host, write_weight=1.5)

    def test_render(self, planner):
        text = planner.render()
        assert "attachment ranking" in text
        assert text.count("node ") >= 8
