"""Shard plans and order-preserving merges, over random shapes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FabricError
from repro.fabric.shard import merge_draws, merge_in_order, plan_shards


@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_plan_covers_exactly_once_in_order(n_items, n_shards):
    plan = plan_shards(n_items, n_shards)
    covered = [i for start, stop in plan for i in range(start, stop)]
    assert covered == list(range(n_items))


@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_plan_is_balanced_and_bounded(n_items, n_shards):
    plan = plan_shards(n_items, n_shards)
    assert len(plan) == min(n_shards, n_items)
    sizes = [stop - start for start, stop in plan]
    assert all(size >= 1 for size in sizes)
    if sizes:
        assert max(sizes) - min(sizes) <= 1
        # Earlier shards take the extras: sizes are non-increasing.
        assert sizes == sorted(sizes, reverse=True)


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), unique=True),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_merge_reproduces_serial_insertion_order(keys, n_shards):
    serial = {key: key * 2 for key in keys}
    shards = [
        {key: serial[key] for key in keys[start:stop]}
        for start, stop in plan_shards(len(keys), n_shards)
    ]
    merged = merge_in_order(shards)
    assert merged == serial
    assert list(merged) == list(serial)


def test_merge_rejects_collisions():
    with pytest.raises(FabricError, match="collide"):
        merge_in_order([{"a": 1}, {"a": 2}])


@given(
    st.lists(
        st.dictionaries(
            st.sampled_from(["s/a", "s/b", "s/c", "s/d"]),
            st.integers(min_value=0, max_value=100),
        ),
        max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_merge_draws_is_namewise_sum(ledgers):
    merged = merge_draws(ledgers)
    for name in {n for ledger in ledgers for n in ledger}:
        assert merged[name] == sum(ledger.get(name, 0) for ledger in ledgers)


def test_plan_rejects_bad_inputs():
    with pytest.raises(FabricError):
        plan_shards(-1, 2)
    with pytest.raises(FabricError):
        plan_shards(4, 0)
