#!/usr/bin/env sh
# Benchmark smoke with regression gating.
#
# Runs the solver-layer, routing-engine, per-figure experiment, and
# service tiered-answer-path benchmark suites, compares the fresh means
# against the committed BENCH_solver.json / BENCH_routing.json /
# BENCH_experiments.json / BENCH_service.json baselines
# (scripts/bench_gate.py, tolerance +25%), and only installs the fresh
# snapshots at the repo root once every gate passes.  A benchmark whose
# mean regressed by more than the tolerance fails the script;
# improvements and new benchmarks pass.  The service suite additionally
# hard-asserts its own ISSUE 8 bar (>= 50x the solve-every-request
# baseline, tier-1 p99 < 1 ms, analytic tier within the documented
# error bound) on every run.
#
# Pass BENCH_TOLERANCE=0.40 (etc.) in the environment to loosen the gate
# on noisy machines.
set -eu

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_TOLERANCE:-0.25}"
TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT

PYTHONPATH=src python -m pytest benchmarks/bench_library_performance.py \
    -q --benchmark-only --benchmark-json="$TMPDIR_BENCH/solver.json" "$@"

PYTHONPATH=src python -m pytest benchmarks/bench_routing_engine.py \
    -q --benchmark-only --benchmark-json="$TMPDIR_BENCH/routing.json" "$@"

PYTHONPATH=src python -m pytest \
    benchmarks/bench_fig3_stream_matrix.py \
    benchmarks/bench_fig4_node7_models.py \
    benchmarks/bench_fig5_tcp.py \
    benchmarks/bench_fig6_rdma.py \
    benchmarks/bench_fig7_ssd.py \
    benchmarks/bench_fig10_iomodel.py \
    benchmarks/bench_table1_numa_factor.py \
    benchmarks/bench_table2_table3_configs.py \
    benchmarks/bench_table4_write_model.py \
    benchmarks/bench_table5_read_model.py \
    -q --benchmark-only --benchmark-json="$TMPDIR_BENCH/experiments.json" "$@"

# The service suite writes the same pytest-benchmark JSON shape and
# enforces its own hard acceptance asserts as it runs.
PYTHONPATH=src python scripts/bench_service.py "$TMPDIR_BENCH/service.json"

# Gate each fresh run against its committed baseline before snapshotting.
for suite in solver routing experiments service; do
    baseline="BENCH_${suite}.json"
    fresh="$TMPDIR_BENCH/${suite}.json"
    if [ -f "$baseline" ]; then
        PYTHONPATH=src python scripts/bench_gate.py "$baseline" "$fresh" \
            --tolerance "$TOLERANCE"
    else
        echo "no committed $baseline baseline; recording a first snapshot"
    fi
done

cp "$TMPDIR_BENCH/solver.json" BENCH_solver.json
cp "$TMPDIR_BENCH/routing.json" BENCH_routing.json
cp "$TMPDIR_BENCH/experiments.json" BENCH_experiments.json
cp "$TMPDIR_BENCH/service.json" BENCH_service.json

PYTHONPATH=src python - <<'EOF'
import json

for path in ("BENCH_solver.json", "BENCH_routing.json", "BENCH_experiments.json",
             "BENCH_service.json"):
    with open(path) as fh:
        data = json.load(fh)
    print(f"\n{path} snapshot:")
    for bench in sorted(data["benchmarks"], key=lambda b: b["name"]):
        stats = bench["stats"]
        print(f"  {bench['name']:50s} mean {stats['mean'] * 1e3:8.2f} ms  "
              f"min {stats['min'] * 1e3:8.2f} ms")
EOF

# Fault-layer overhead gate: the fault subsystem is strictly opt-in, so a
# healthy STREAM matrix on a zero-fault FaultedMachine view must cost
# within 5 % of the same matrix on the plain host (min-of-5 each).
PYTHONPATH=src python - <<'EOF'
import time

from repro.bench.stream import StreamBenchmark
from repro.faults.plan import FaultedMachine
from repro.topology.builders import reference_host


def best_of(machine, repeats=5, runs=20):
    times = []
    for _ in range(repeats):
        bench = StreamBenchmark(machine, runs=runs)
        t0 = time.perf_counter()
        bench.matrix()
        times.append(time.perf_counter() - t0)
    return min(times)


host = reference_host()
best_of(host, repeats=1)  # warmup (imports, caches)
healthy = best_of(host)
faulted = best_of(FaultedMachine(host, ()))
ratio = faulted / healthy
print(f"\nfault-layer overhead on healthy stream matrix: "
      f"healthy {healthy * 1e3:.1f} ms, zero-fault view {faulted * 1e3:.1f} ms "
      f"({(ratio - 1) * 100:+.1f} %)")
if ratio > 1.05:
    raise SystemExit("FAIL: fault layer adds >5% overhead to the healthy path")
print("OK: fault layer overhead within 5%")
EOF

# Telemetry overhead gate: recording spans/counters must cost within 5 %
# of the identical workload with telemetry off (min-of-5 each).  The
# no-op path (no recorder installed) is covered by the unit suite; this
# gates the *enabled* path.
PYTHONPATH=src python - <<'EOF'
import tempfile
import time

from repro.bench.stream import StreamBenchmark
from repro.obs import recording
from repro.topology.builders import reference_host


def best_of(recorded, repeats=5, runs=20):
    times = []
    for i in range(repeats):
        bench = StreamBenchmark(reference_host(), runs=runs)
        if recorded:
            with tempfile.TemporaryDirectory() as obs_dir:
                with recording(obs_dir, command="bench"):
                    t0 = time.perf_counter()
                    bench.matrix()
                    times.append(time.perf_counter() - t0)
        else:
            t0 = time.perf_counter()
            bench.matrix()
            times.append(time.perf_counter() - t0)
    return min(times)


best_of(False, repeats=1)  # warmup (imports, caches)
off = best_of(False)
on = best_of(True)
ratio = on / off
print(f"\ntelemetry overhead on stream matrix: "
      f"off {off * 1e3:.1f} ms, recording {on * 1e3:.1f} ms "
      f"({(ratio - 1) * 100:+.1f} %)")
if ratio > 1.05:
    raise SystemExit("FAIL: enabled telemetry adds >5% overhead")
print("OK: enabled telemetry overhead within 5%")
EOF

# Span-driven phase triage: record the obs manifest of a fixed iomodel
# sweep and flag per-phase wall-time shifts against the committed
# BENCH_obs baseline beyond the noise band.  Advisory by default (wall
# times vary across machines — the gates above own pass/fail); opt into
# hard gating with `repro-numa obs report A B --phase-tolerance F
# --gate-phases` (exit 4 on a shift).
PHASE_TOLERANCE="${PHASE_TOLERANCE:-0.50}"
PYTHONPATH=src python -m repro.cli.main iomodel --targets all --mode both \
    --runs 10 --obs-dir "$TMPDIR_BENCH/obs" > /dev/null
if [ -f BENCH_obs/manifest.json ]; then
    echo ""
    PYTHONPATH=src python -m repro.cli.main obs report BENCH_obs \
        "$TMPDIR_BENCH/obs" --phase-tolerance "$PHASE_TOLERANCE"
else
    echo "no committed BENCH_obs baseline; recording a first snapshot"
fi
mkdir -p BENCH_obs
cp "$TMPDIR_BENCH/obs/manifest.json" "$TMPDIR_BENCH/obs/trace.jsonl" BENCH_obs/
