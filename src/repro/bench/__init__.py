"""Benchmarks: STREAM and the fio-like I/O runner.

These reproduce the paper's measurement *protocols* against the
simulator substrate:

* :class:`~repro.bench.stream.StreamBenchmark` — §III-B1: four kernels,
  arrays >= 4x LLC, threads pinned per node via ``numactl``, max of 100
  runs reported.
* :class:`~repro.bench.fio.FioRunner` — §III-B2: job-driven I/O with
  ``tcp``, ``rdma_*``, ``libaio`` and ``memcpy`` engines, 400 GB per
  stream, aggregate average reported.
"""

from repro.bench.concurrent import ConcurrentResult, ConcurrentRunner
from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob, parse_jobfile, write_jobfile
from repro.bench.latency import LatencyBenchmark
from repro.bench.numademo import Numademo
from repro.bench.results import BandwidthMatrix, JobResult, Measurement
from repro.bench.runlog import RunLog, RunRecord
from repro.bench.stream import StreamBenchmark

__all__ = [
    "ConcurrentResult",
    "ConcurrentRunner",
    "FioRunner",
    "FioJob",
    "parse_jobfile",
    "write_jobfile",
    "LatencyBenchmark",
    "Numademo",
    "BandwidthMatrix",
    "JobResult",
    "Measurement",
    "RunLog",
    "RunRecord",
    "StreamBenchmark",
]
