"""Workload traces: record and replay stream arrival processes.

An :class:`~repro.core.migration.OnlineWorkload` draws a synthetic
arrival process; production users have *real* ones (job logs, transfer
queues).  Traces put both through the same door: JSON-lines files of
``(name, arrival_s, size_bytes, direction)`` that any source can write
and :class:`~repro.core.migration.OnlineSimulator` can replay — so
policies are compared on identical, versionable workloads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.core.migration import StreamJob
from repro.errors import ModelError

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(jobs: Iterable[StreamJob], path: str | Path) -> int:
    """Write jobs as a JSON-lines trace; returns the number written."""
    jobs = list(jobs)
    if not jobs:
        raise ModelError("refusing to write an empty trace")
    lines = [
        json.dumps({"format_version": _FORMAT_VERSION, "streams": len(jobs)})
    ]
    lines.extend(
        json.dumps(
            {
                "name": job.name,
                "arrival_s": job.arrival_s,
                "size_bytes": job.size_bytes,
                "direction": job.direction,
            },
            sort_keys=True,
        )
        for job in jobs
    )
    # Atomic so a crashed exporter never leaves a half-written trace
    # that a later run would happily replay truncated.
    from repro.journal.atomic import atomic_write_text

    atomic_write_text(Path(path), "\n".join(lines) + "\n")
    return len(jobs)


def load_trace(path: str | Path) -> list[StreamJob]:
    """Read a trace written by :func:`save_trace` (or by any log
    exporter emitting the same fields)."""
    source = Path(path)
    if not source.exists():
        raise ModelError(f"no trace at {source}")
    jobs: list[StreamJob] = []
    with source.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ModelError(f"malformed trace header: {exc}") from exc
        if header.get("format_version") != _FORMAT_VERSION:
            raise ModelError(
                f"unsupported trace format {header.get('format_version')!r}"
            )
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                jobs.append(
                    StreamJob(
                        name=str(data["name"]),
                        arrival_s=float(data["arrival_s"]),
                        size_bytes=float(data["size_bytes"]),
                        direction=str(data.get("direction", "write")),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ModelError(
                    f"malformed trace line {lineno} in {source}: {exc}"
                ) from exc
    if not jobs:
        raise ModelError(f"trace {source} contains no streams")
    names = [j.name for j in jobs]
    if len(set(names)) != len(names):
        raise ModelError(f"trace {source} has duplicate stream names")
    return jobs
