"""hwloc-style textual rendering of a machine.

The real ``lstopo`` shows the containment hierarchy but, as the paper
notes (§II-B), *not* how NUMA nodes are interconnected.  We render both —
the hierarchy for orientation, and the link table because this library's
whole point is that the links matter.
"""

from __future__ import annotations

from repro.topology.machine import Machine
from repro.units import fmt_bytes

__all__ = ["render_machine", "render_links"]


def render_machine(machine: Machine) -> str:
    """Human-readable containment view (machine -> package -> node -> cores)."""
    lines = [f"Machine {machine.name!r}: {machine.n_nodes} NUMA nodes, {machine.n_cores} cores"]
    if machine.params.description:
        lines.append(f"  ({machine.params.description})")
    for pkg_id in sorted(machine.packages):
        pkg = machine.packages[pkg_id]
        lines.append(f"  Package P{pkg_id}")
        for nid in pkg.node_ids:
            node = machine.node(nid)
            core_span = f"{node.cores[0].core_id}-{node.cores[-1].core_id}"
            lines.append(
                f"    NUMANode N{nid}: cores {core_span}, "
                f"{fmt_bytes(node.memory_bytes)} RAM "
                f"({fmt_bytes(node.free_bytes)} free), "
                f"DRAM {node.dram_gbps:.1f} Gbps"
            )
    devices = sorted(machine.devices)
    if devices:
        lines.append("  Devices:")
        for name in devices:
            lines.append(f"    {name}: {machine.devices[name]!s}")
    return "\n".join(lines)


def render_links(machine: Machine) -> str:
    """Directed link table with per-plane effective capacities."""
    lines = ["src -> dst  kind width GT/s   raw    dma    pio  lat(ns)"]
    for (src, dst), link in sorted(machine.links.items()):
        lines.append(
            f"{src:>3} -> {dst:<3} {link.kind.value:>4} "
            f"x{link.width_bits:<3} {link.gts:<4.1f} "
            f"{link.raw_gbps:6.1f} {link.dma_gbps:6.1f} {link.pio_gbps:6.1f} "
            f"{link.pio_latency_s * 1e9:7.1f}"
        )
    return "\n".join(lines)
