"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
Sub-types mirror the major subsystems; they carry enough context in their
message to diagnose a mis-configured machine description or benchmark job
without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A machine description is inconsistent (unknown node, bad link, ...)."""


class RoutingError(ReproError):
    """No route exists for a requested (source, destination, plane) triple."""


class AllocationError(ReproError):
    """A memory allocation could not be satisfied under the active policy."""


class AffinityError(ReproError):
    """A CPU or memory binding request referenced an invalid resource."""


class SimulationError(ReproError):
    """The discrete-event engine or flow network reached an invalid state."""


class BenchmarkError(ReproError):
    """A benchmark job specification is invalid or a run failed."""


class ModelError(ReproError):
    """An I/O performance model is malformed or used inconsistently."""


class DeviceError(ReproError):
    """A PCIe device description or operation is invalid."""


class FaultError(ReproError):
    """A fault-injection plan is invalid or a fault cannot be applied."""


class ObsError(ReproError):
    """A telemetry recording, manifest, or trace is invalid or misused."""


class RouteLostError(FaultError):
    """A transfer's route vanished under faults and no alternative survives."""


class FabricError(ReproError):
    """A shared-memory arena or worker-pool operation failed or is misused."""


class JournalError(ReproError):
    """A run journal is corrupt, incompatible, or misused.

    Raised when a journal record fails its CRC (the message names the
    record index), when a journal's run metadata does not match the
    resuming invocation, or when a file is not a run journal at all.
    A *torn tail* — the last record cut short by a crash mid-append —
    is not an error: resume truncates it and re-runs that unit.
    """


class ServiceError(ReproError):
    """A placement-advisory request failed with a typed, wire-safe error.

    Carries a machine-readable ``kind`` (one of the service protocol's
    error taxonomy, e.g. ``"invalid_params"``, ``"deadline_exceeded"``,
    ``"overloaded"``) plus optional structured ``data``; the service
    serialises these onto the wire instead of tracebacks.
    """

    def __init__(self, kind: str, message: str, data: dict | None = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.data = dict(data) if data else {}
