"""numactl front-end."""

import pytest

from repro.errors import AffinityError
from repro.memory.policy import AllocPolicy
from repro.osmodel.numactl import Numactl


@pytest.fixture()
def numactl(host):
    return Numactl(host)


class TestRun:
    def test_plain(self, numactl):
        task = numactl.run("t")
        assert task.binding.cpu_node is None
        assert task.binding.mem.policy is AllocPolicy.LOCAL_PREFERRED

    def test_cpunodebind_membind(self, numactl):
        task = numactl.run("t", cpunodebind=7, membind=(6,))
        assert task.binding.cpu_node == 7
        assert task.binding.mem.policy is AllocPolicy.BIND
        assert task.binding.mem.nodes == (6,)

    def test_interleave(self, numactl):
        task = numactl.run("t", interleave=(0, 1))
        assert task.binding.mem.policy is AllocPolicy.INTERLEAVE

    def test_preferred(self, numactl):
        task = numactl.run("t", preferred=3)
        assert task.binding.mem.policy is AllocPolicy.PREFERRED

    def test_conflicting_policies_rejected(self, numactl):
        with pytest.raises(AffinityError):
            numactl.run("t", membind=(1,), interleave=(2,))

    def test_unknown_node_rejected(self, numactl):
        with pytest.raises(AffinityError):
            numactl.run("t", cpunodebind=99)


class TestHardware:
    def test_header(self, numactl):
        text = numactl.hardware()
        assert text.startswith("available: 8 nodes (0-7)")

    def test_shows_paper_free_memory_pattern(self, numactl):
        # ~1.5 GB free on node 0, ~3.8 GB elsewhere (§IV-A).
        text = numactl.hardware()
        assert "node 0 free: 1610 MB" in text  # 1.5 GiB in decimal MB
        assert "node 3 free: 4026 MB" in text  # 3.75 GiB in decimal MB

    def test_distances_rendered(self, numactl):
        text = numactl.hardware()
        assert "node distances:" in text
        assert " 10" in text  # the SLIT diagonal
