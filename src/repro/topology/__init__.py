"""Machine descriptions: NUMA nodes, packages, links, and builders.

The :class:`~repro.topology.machine.Machine` object is the single source
of truth every other subsystem consumes: benchmarks pin work to its nodes,
the routing layer walks its links, devices attach to its I/O node.

Builders (:mod:`repro.topology.builders`) construct:

* ``reference_host()`` — the calibrated 8-node AMD 4P host of the paper's
  Table II, with the asymmetries of §IV built in;
* ``magny_cours_4p(variant)`` — the four published topology guesses of
  the paper's Fig. 1;
* the four Table I server configurations (NUMA-factor study);
* ``parametric_machine(...)`` — arbitrary package/die grids for tests.
"""

from repro.topology.distance import distance_matrix, hop_matrix
from repro.topology.hwloc import render_machine
from repro.topology.machine import Machine, MachineParams, Relation
from repro.topology.node import Core, NumaNode, Package
from repro.topology.serialize import machine_from_dict, machine_to_dict

__all__ = [
    "Machine",
    "MachineParams",
    "Relation",
    "Core",
    "NumaNode",
    "Package",
    "hop_matrix",
    "distance_matrix",
    "render_machine",
    "machine_to_dict",
    "machine_from_dict",
]
