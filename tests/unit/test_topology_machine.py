"""Machine structure, relations, and capacity models."""

import pytest

from repro.errors import TopologyError
from repro.interconnect.link import link_pair
from repro.interconnect.planes import PLANE_DMA, PLANE_PIO
from repro.topology.machine import Machine, MachineParams, Relation
from repro.topology.node import Core, NumaNode, Package


def _two_node_machine(**param_kw):
    nodes = [
        NumaNode(node_id=i, package_id=i,
                 cores=tuple(Core(core_id=4 * i + c, node_id=i) for c in range(4)))
        for i in range(2)
    ]
    packages = [Package(package_id=i, node_ids=(i,)) for i in range(2)]
    links = link_pair(0, 1, 16, 3.2)
    return Machine("duo", nodes, packages, links, MachineParams(**param_kw))


class TestStructure:
    def test_basic_queries(self, host):
        assert host.n_nodes == 8
        assert host.n_cores == 32
        assert host.node_ids == tuple(range(8))
        assert host.cores_per_node() == 4

    def test_node_lookup_unknown_raises(self, host):
        with pytest.raises(TopologyError):
            host.node(99)

    def test_link_lookup(self, host):
        link = host.link(0, 7)
        assert link.ends == (0, 7)
        with pytest.raises(TopologyError):
            host.link(0, 5)

    def test_packages_partition_nodes(self, host):
        listed = sorted(n for p in host.packages.values() for n in p.node_ids)
        assert listed == list(host.node_ids)

    def test_duplicate_link_rejected(self):
        nodes = [
            NumaNode(node_id=i, package_id=i,
                     cores=(Core(core_id=i, node_id=i),))
            for i in range(2)
        ]
        packages = [Package(package_id=i, node_ids=(i,)) for i in range(2)]
        links = list(link_pair(0, 1, 16, 3.2)) + list(link_pair(0, 1, 8, 3.2))
        with pytest.raises(TopologyError):
            Machine("dup", nodes, packages, links)

    def test_unknown_link_endpoint_rejected(self):
        nodes = [NumaNode(node_id=0, package_id=0,
                          cores=(Core(core_id=0, node_id=0),))]
        packages = [Package(package_id=0, node_ids=(0,))]
        with pytest.raises(TopologyError):
            Machine("bad", nodes, packages, link_pair(0, 9, 16, 3.2))


class TestRelations:
    def test_local(self, host):
        assert host.relation(3, 3) is Relation.LOCAL

    def test_neighbor_same_package(self, host):
        assert host.relation(6, 7) is Relation.NEIGHBOR
        assert host.relation(0, 1) is Relation.NEIGHBOR

    def test_remote_cross_package(self, host):
        assert host.relation(0, 7) is Relation.REMOTE


class TestDmaPathModel:
    def test_local_bound_by_controller(self, host):
        assert host.dma_path_gbps(7, 7) == pytest.approx(56.0)

    def test_remote_bound_by_bottleneck_link(self, host):
        assert host.dma_path_gbps(0, 7) == pytest.approx(0.87 * 51.2)

    def test_asymmetric_directions(self, host):
        # The 4<->7 pair: healthy request direction, starved response.
        assert host.dma_path_gbps(4, 7) > 1.5 * host.dma_path_gbps(7, 4)

    def test_multi_hop_takes_min(self, host):
        # 7 -> 5 routes via node 6; bottleneck is the 6->5 direction.
        assert host.dma_path_gbps(7, 5) == pytest.approx(0.79 * 51.2)


class TestPioModel:
    def test_local_latency(self, host):
        assert host.pio_round_trip_s(3, 3) == pytest.approx(100e-9)

    def test_remote_adds_link_latency(self, host):
        assert host.pio_round_trip_s(7, 0) == pytest.approx(125e-9)

    def test_os_node_advantage(self, host):
        # Node 0 local STREAM beats the other locals (shared libs local).
        assert host.pio_stream_gbps(0, 0) > host.pio_stream_gbps(3, 3)

    def test_threads_scale_until_caps(self, host):
        one = host.pio_stream_gbps(7, 0, threads=1)
        four = host.pio_stream_gbps(7, 0, threads=4)
        assert four > 2 * one

    def test_invalid_threads(self, host):
        with pytest.raises(TopologyError):
            host.pio_stream_gbps(0, 0, threads=0)

    def test_paper_asymmetric_pair(self, host):
        assert host.pio_stream_gbps(7, 4) == pytest.approx(21.34, rel=0.02)
        assert host.pio_stream_gbps(4, 7) == pytest.approx(18.45, rel=0.02)


class TestParams:
    def test_param_validation(self):
        with pytest.raises(TopologyError):
            MachineParams(local_latency_s=0)
        with pytest.raises(TopologyError):
            MachineParams(oslib_penalty=0)
        with pytest.raises(TopologyError):
            MachineParams(dma_per_thread_gbps=-1)

    def test_heterogeneous_core_count_detected(self):
        nodes = [
            NumaNode(node_id=0, package_id=0,
                     cores=(Core(core_id=0, node_id=0),)),
            NumaNode(node_id=1, package_id=1,
                     cores=(Core(core_id=1, node_id=1), Core(core_id=2, node_id=1))),
        ]
        packages = [Package(package_id=i, node_ids=(i,)) for i in range(2)]
        machine = Machine("hetero", nodes, packages, link_pair(0, 1, 16, 3.2))
        with pytest.raises(TopologyError):
            machine.cores_per_node()

    def test_path_planes_differ(self, host):
        # PIO 7<->2 goes direct; DMA 7->3 detours via 2.
        pio = host.path(PLANE_PIO, 7, 2)
        dma = host.path(PLANE_DMA, 7, 3)
        assert pio.hops == (7, 2)
        assert dma.hops == (7, 2, 3)
