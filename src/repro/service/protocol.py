"""The service wire protocol: JSON-RPC 2.0 framing, schemas, typed errors.

One request per line, one response per line, everything JSON.  The
protocol layer is the service's outer wall: every byte that arrives is
parsed, shape-checked and schema-validated *here*, so the dispatch and
backend layers only ever see well-typed parameter dicts — and every
failure mode maps to a typed error object (``kind`` + JSON-RPC ``code``
+ message + structured ``data``), never a traceback.

Error taxonomy
--------------

===================  ======  =================================================
kind                 code    meaning
===================  ======  =================================================
``parse_error``      -32700  the line is not valid JSON
``invalid_request``  -32600  valid JSON, not a valid JSON-RPC request
``method_not_found`` -32601  unknown ``method``
``invalid_params``   -32602  params failed schema validation (names the field)
``internal_error``   -32603  unexpected failure (sanitised, no traceback)
``solver_error``     -32000  the solver/characterization layer failed
``deadline_exceeded``-32001  the request's deadline expired
``overloaded``       -32002  admission queue full — explicit backpressure
``unavailable``      -32003  breaker open and no last-good degraded answer
``shutting_down``    -32004  server is draining; retry elsewhere
===================  ======  =================================================

Response tiering
----------------

Every method result (``health``/``ready``/``metrics`` excepted — they
are meta)
carries two extra fields, the tier contract:

=================  ===========================================================
field              meaning
=================  ===========================================================
``tier``           ``1`` analytic fit, ``2`` memoized class model, ``3`` full
                   Algorithm 1 solve (:data:`TIER_NAMES`)
``staleness_s``    seconds since the characterization behind the answer was
                   last refreshed by a completed solve (``0.0`` for tier 3)
=================  ===========================================================

Degraded answers (breaker open) are tier ``2`` with ``degraded: true``
and their true — possibly large — staleness; tier-1 answers addition-
ally carry ``fit_rel_err_bound``, the fit's measured worst-case
relative deviation from the exact Eq. 1 coefficients.

Bandwidths and ratios on the wire carry six decimals (µGbps /
micro-fraction precision — far below the characterization noise), so
responses stay compact and byte-stable across the fast and slow tiers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ServiceError

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "METHODS",
    "TIER_NAMES",
    "Field",
    "decode_request",
    "validate_params",
    "result_response",
    "error_response",
    "encode_message",
    "wire_fragments",
    "encode_wire",
    "encode_result_line",
]

PROTOCOL_VERSION = "2.0"

#: kind -> JSON-RPC error code.  Standard codes where they exist,
#: implementation-defined (-32000..-32099) for the service's own taxonomy.
ERROR_CODES = {
    "parse_error": -32700,
    "invalid_request": -32600,
    "method_not_found": -32601,
    "invalid_params": -32602,
    "internal_error": -32603,
    "solver_error": -32000,
    "deadline_exceeded": -32001,
    "overloaded": -32002,
    "unavailable": -32003,
    "shutting_down": -32004,
}

#: Reserved request param understood by the transport, not the methods.
DEADLINE_PARAM = "deadline_ms"

#: tier tag -> human name, for reports and operator tooling.
TIER_NAMES = {1: "analytic", 2: "class-model", 3: "solve"}


@dataclass(frozen=True)
class Field:
    """Schema for one request parameter."""

    types: tuple
    required: bool = False
    default: Any = None
    choices: tuple | None = None
    minimum: float | None = None
    maximum: float | None = None
    below: float | None = None  # exclusive upper bound
    item_types: tuple | None = None  # element types for list fields
    nonempty: bool = False


#: method -> {param name -> Field}.  ``deadline_ms`` is accepted on every
#: method and handled by the transport layer.
METHODS: dict[str, dict[str, Field]] = {
    "advise": {
        "target": Field((int,), required=True, minimum=0),
        "mode": Field((str,), default="write", choices=("write", "read")),
        "tasks": Field((int,), required=True, minimum=1),
        "avoid_irq_node": Field((bool,), default=False),
        "tolerance": Field((int, float), default=0.05, minimum=0.0, below=1.0),
    },
    "plan": {
        "write_weight": Field((int, float), default=0.5, minimum=0.0, maximum=1.0),
    },
    "predict_eq1": {
        "target": Field((int,), required=True, minimum=0),
        "mode": Field((str,), default="read", choices=("write", "read")),
        "streams": Field((list,), required=True, item_types=(int,), nonempty=True),
    },
    "classify": {
        "target": Field((int,), required=True, minimum=0),
        "mode": Field((str,), default="write", choices=("write", "read")),
    },
    "health": {},
    "ready": {},
    "metrics": {
        "flight": Field((bool,), default=False),
    },
}


def _is_bool(value) -> bool:
    return isinstance(value, bool)


#: types tuple -> the same tuple minus ``bool`` (bool subclasses int, so
#: the non-bool check must exclude it); cached — schemas are static and
#: this sits on the per-request validation path.
_NONBOOL_TYPES: dict[tuple, tuple] = {}


def _type_ok(value, types: tuple) -> bool:
    """Type check that never lets ``True`` pass as an int (or vice versa)."""
    if _is_bool(value):
        return bool in types
    nonbool = _NONBOOL_TYPES.get(types)
    if nonbool is None:
        nonbool = _NONBOOL_TYPES[types] = tuple(
            t for t in types if t is not bool
        )
    return isinstance(value, nonbool)


def _type_names(types: tuple) -> str:
    return " or ".join(t.__name__ for t in types)


def _check_field(method: str, name: str, spec: Field, value):
    where = f"method {method!r}: param {name!r}"
    if not _type_ok(value, spec.types):
        raise ServiceError(
            "invalid_params",
            f"{where} must be {_type_names(spec.types)}, "
            f"got {type(value).__name__}",
            data={"param": name},
        )
    if spec.choices is not None and value not in spec.choices:
        raise ServiceError(
            "invalid_params",
            f"{where} must be one of {list(spec.choices)}, got {value!r}",
            data={"param": name},
        )
    if spec.minimum is not None and value < spec.minimum:
        raise ServiceError(
            "invalid_params",
            f"{where} must be >= {spec.minimum}, got {value!r}",
            data={"param": name},
        )
    if spec.maximum is not None and value > spec.maximum:
        raise ServiceError(
            "invalid_params",
            f"{where} must be <= {spec.maximum}, got {value!r}",
            data={"param": name},
        )
    if spec.below is not None and value >= spec.below:
        raise ServiceError(
            "invalid_params",
            f"{where} must be < {spec.below}, got {value!r}",
            data={"param": name},
        )
    if spec.item_types is not None:
        bad = [v for v in value if not _type_ok(v, spec.item_types)]
        if bad:
            raise ServiceError(
                "invalid_params",
                f"{where} must contain only {_type_names(spec.item_types)}, "
                f"got {bad[0]!r}",
                data={"param": name},
            )
    if spec.nonempty and not value:
        raise ServiceError(
            "invalid_params", f"{where} must not be empty", data={"param": name}
        )


def _needs_full_check(spec: Field) -> bool:
    return (
        spec.choices is not None
        or spec.minimum is not None
        or spec.maximum is not None
        or spec.below is not None
        or spec.item_types is not None
        or spec.nonempty
    )


#: method -> (allowed param names incl. ``deadline_ms``,
#:            ((name, spec, has-constraints-beyond-type), ...)).
#: Precompiled once — schemas are static and validation sits on the
#: per-request path; type-only fields skip the full constraint walk.
_COMPILED: dict[str, tuple[frozenset, tuple]] = {
    method: (
        frozenset(schema) | {DEADLINE_PARAM},
        tuple(
            (name, spec, _needs_full_check(spec))
            for name, spec in schema.items()
        ),
    )
    for method, schema in METHODS.items()
}

_NO_PARAMS: dict = {}


def validate_params(method: str, params: Mapping | None) -> dict:
    """Schema-validate ``params`` for ``method``; returns a filled dict.

    Defaults are applied, unknown parameters are rejected *by name*, and
    every violation raises :class:`~repro.errors.ServiceError` of kind
    ``invalid_params`` (or ``method_not_found`` for an unknown method).
    """
    compiled = _COMPILED.get(method)
    if compiled is None:
        raise ServiceError(
            "method_not_found",
            f"unknown method {method!r}; choose from {sorted(METHODS)}",
        )
    allowed, fields = compiled
    if params:
        for key in params:
            if key not in allowed:
                raise ServiceError(
                    "invalid_params",
                    f"method {method!r}: unknown param {key!r} "
                    f"(accepts {sorted(METHODS[method]) + [DEADLINE_PARAM]})",
                    data={"param": key},
                )
    else:
        params = _NO_PARAMS
    out: dict = {}
    for name, spec, constrained in fields:
        if name in params:
            value = params[name]
            if constrained or not _type_ok(value, spec.types):
                _check_field(method, name, spec, value)
            out[name] = value
        elif spec.required:
            raise ServiceError(
                "invalid_params",
                f"method {method!r}: missing required param {name!r}",
                data={"param": name},
            )
        else:
            out[name] = spec.default
    return out


def decode_request(line: str) -> tuple[Any, str, dict, "float | None"]:
    """Parse one request line into ``(id, method, raw params, deadline_ms)``.

    Raises :class:`~repro.errors.ServiceError` (``parse_error`` /
    ``invalid_request``) on malformed input; params are *not* yet
    schema-validated (that is :func:`validate_params`, once the method
    is known to exist).
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError("parse_error", f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServiceError(
            "invalid_request",
            f"request must be a JSON object, got {type(obj).__name__}",
        )
    if obj.get("jsonrpc") != PROTOCOL_VERSION:
        raise ServiceError(
            "invalid_request",
            f"request field 'jsonrpc' must be {PROTOCOL_VERSION!r}, "
            f"got {obj.get('jsonrpc')!r}",
        )
    if "id" not in obj or not isinstance(obj["id"], (str, int)) or _is_bool(obj["id"]):
        raise ServiceError(
            "invalid_request", "request field 'id' must be a string or integer"
        )
    method = obj.get("method")
    if not isinstance(method, str):
        raise ServiceError(
            "invalid_request", "request field 'method' must be a string"
        )
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ServiceError(
            "invalid_request",
            f"request field 'params' must be an object, "
            f"got {type(params).__name__}",
        )
    deadline = params.get(DEADLINE_PARAM)
    if deadline is not None and (
        not _type_ok(deadline, (int, float)) or deadline < 0
    ):
        raise ServiceError(
            "invalid_params",
            f"param {DEADLINE_PARAM!r} must be a non-negative number, "
            f"got {deadline!r}",
            data={"param": DEADLINE_PARAM},
        )
    return obj["id"], method, params, deadline


def result_response(req_id, result: Mapping) -> dict:
    """A JSON-RPC success envelope.

    A ``dict`` result (including the pre-encoded answers from the warm
    tiers) is embedded as-is — the dispatch layer always hands over a
    fresh payload; other mappings are copied.
    """
    if not isinstance(result, dict):
        result = dict(result)
    return {"jsonrpc": PROTOCOL_VERSION, "id": req_id, "result": result}


def error_response(req_id, exc: ServiceError) -> dict:
    """A JSON-RPC error envelope from a typed :class:`ServiceError`."""
    error = {
        "code": ERROR_CODES.get(exc.kind, ERROR_CODES["internal_error"]),
        "kind": exc.kind,
        "message": str(exc),
    }
    if exc.data:
        error["data"] = dict(exc.data)
    return {"jsonrpc": PROTOCOL_VERSION, "id": req_id, "error": error}


#: The one wire encoder, built once — ``json.dumps`` with keyword
#: arguments constructs a fresh ``JSONEncoder`` per call, a measurable
#: cost at tier-1 answer rates.
_WIRE_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode


def encode_message(message: Mapping) -> str:
    """One wire line (sorted keys, compact separators — byte-stable)."""
    return _WIRE_ENCODE(message) + "\n"


#: Key token the fragment splitter splices the live staleness around.
_STALENESS_TOKEN = '"staleness_s":'

#: Envelope glue between the encoded id and the result fragments; the
#: envelope keys ``id`` < ``jsonrpc`` < ``result`` are spelled in the
#: sorted order the wire encoder itself would emit.
_ENVELOPE_MID = ',"jsonrpc":"' + PROTOCOL_VERSION + '","result":'


def wire_fragments(payload: Mapping, tier: int) -> tuple[str, str]:
    """Pre-encode a memoized result, split around the staleness value.

    ``(pre, post)`` is the payload — stamped at ``tier`` — run through
    the wire encoder once, with the staleness digits excised;
    :func:`encode_result_line` splices a live staleness (and request
    id) back in, byte-identical to encoding the stamped dict afresh.
    Only sound for service payloads: no string value in them ever
    contains the staleness key token.
    """
    stamped = dict(payload)
    stamped["tier"] = tier
    stamped["staleness_s"] = 0.0
    encoded = _WIRE_ENCODE(stamped)
    start = encoded.index(_STALENESS_TOKEN) + len(_STALENESS_TOKEN)
    end = start
    while encoded[end] not in ",}":
        end += 1
    return encoded[:start], encoded[end:]


def encode_wire(value) -> str:
    """One value through the wire encoder (no framing newline).

    For pre-computing fragments that splice into
    :func:`encode_result_line` — same encoder, same bytes.
    """
    return _WIRE_ENCODE(value)


def encode_result_line(req_id, pre: str, staleness_s: float, post: str) -> str:
    """A success wire line spliced from pre-encoded result fragments.

    Byte-identical to ``encode_message(result_response(req_id, ...))``
    for the stamped payload behind ``pre``/``post``: ``repr`` of the
    (already rounded) staleness float matches the encoder's float
    formatting, and the envelope glue carries the sorted key order.
    """
    rid = str(req_id) if type(req_id) is int else _WIRE_ENCODE(req_id)
    return (
        '{"id":' + rid + _ENVELOPE_MID
        + pre + repr(staleness_s) + post + "}\n"
    )
