"""Batched DP route selection vs per-pair enumeration.

The batch engine must be *bit-identical* to ``select_route`` — the
whole reproduction (EXPERIMENTS.md included) rides on the routes — so
these properties sweep randomized connected topologies with asymmetric
per-direction link attributes drawn from small discrete sets (to force
plenty of score ties) and compare every pair on both planes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.faults import FaultedMachine, LinkFail
from repro.interconnect.link import DirectedLink
from repro.interconnect.planes import ALL_PLANES, PLANE_DMA
from repro.routing.batch import batch_routes
from repro.routing.table import RoutingTable, select_route
from repro.topology.builders import reference_host

NS = 1e-9


@st.composite
def link_maps(draw):
    """A connected directed link map with asymmetric attributes.

    Spanning tree plus random chords; every direction draws its own
    width / credit / PIO cap / latency from small sets so distinct
    routes frequently tie on one score component and the tie-break
    chain (bottleneck, latency, lexicographic) actually decides.
    """
    n = draw(st.integers(min_value=3, max_value=8))
    nodes = list(range(n))
    perm = draw(st.permutations(nodes))
    edges = set()
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        a, b = perm[i], perm[j]
        edges.add((min(a, b), max(a, b)))
    spare = [
        (a, b) for a in nodes for b in nodes if a < b and (a, b) not in edges
    ]
    if spare:
        extras = draw(
            st.lists(st.sampled_from(spare), min_size=0, max_size=min(len(spare), n))
        )
        edges.update(extras)
    links = {}
    for a, b in sorted(edges):
        for s, d in ((a, b), (b, a)):
            links[(s, d)] = DirectedLink(
                src=s,
                dst=d,
                width_bits=draw(st.sampled_from([8, 16])),
                gts=3.2,
                dma_credit=draw(st.sampled_from([0.5, 0.9, 1.0])),
                pio_cap_gbps=draw(st.sampled_from([10.0, 20.0, 25.0])),
                pio_latency_s=draw(
                    st.sampled_from([5 * NS, 12.5 * NS, 40 * NS, 130 * NS])
                ),
            )
    return links


@given(link_maps())
@settings(max_examples=80, deadline=None)
def test_batch_routes_equal_select_route_everywhere(links):
    nodes = sorted({n for ends in links for n in ends})
    for plane in ALL_PLANES:
        routes = batch_routes(links, plane)
        for src in nodes:
            for dst in nodes:
                assert routes[(src, dst)] == select_route(links, plane, src, dst)


@given(link_maps())
@settings(max_examples=60, deadline=None)
def test_populated_table_matches_per_pair_path(links):
    nodes = sorted({n for ends in links for n in ends})
    table = RoutingTable(links)
    for plane in ALL_PLANES:
        table.populate(plane)
        for src in nodes:
            for dst in nodes:
                assert table.route(plane, src, dst) == select_route(
                    links, plane, src, dst
                )


@given(link_maps(), st.data())
@settings(max_examples=60, deadline=None)
def test_overrides_win_over_populated_routes(links, data):
    adj = {}
    for s, d in links:
        adj.setdefault(s, []).append(d)
    # A 2-hop override src -> mid -> dst through any mid with >= 2 neighbours.
    mid = data.draw(
        st.sampled_from(sorted(n for n, outs in adj.items() if len(outs) >= 2))
    )
    src = data.draw(st.sampled_from(sorted(adj[mid])))
    dst = data.draw(st.sampled_from(sorted(d for d in adj[mid] if d != src)))
    plane = data.draw(st.sampled_from(ALL_PLANES))
    table = RoutingTable(links)
    table.set_route(plane, (src, mid, dst))
    table.populate(plane)
    assert table.route(plane, src, dst) == (src, mid, dst)
    # Every non-overridden pair still matches the per-pair heuristic.
    nodes = sorted({n for ends in links for n in ends})
    for a in nodes:
        for b in nodes:
            if (a, b) != (src, dst):
                assert table.route(plane, a, b) == select_route(links, plane, a, b)


class TestPartitionedFabric:
    def _partitioned(self):
        host = reference_host(with_devices=False)
        cut = sorted(
            {(min(a, b), max(a, b)) for a, b in host.links if (a in (0, 1)) != (b in (0, 1))}
        )
        return FaultedMachine(host, tuple(LinkFail(a, b) for a, b in cut))

    def test_populate_raises_naming_unreachable_pair(self):
        machine = self._partitioned()
        with pytest.raises(RoutingError, match=r"no route from node \d+ to node \d+"):
            machine.routing.populate(PLANE_DMA, nodes=machine.node_ids)

    def test_reachable_pairs_still_route_lazily(self):
        machine = self._partitioned()
        assert machine.routing.route(PLANE_DMA, 0, 1) == (0, 1)
        assert machine.path(PLANE_DMA, 2, 3).hops == (2, 3)
        with pytest.raises(RoutingError):
            machine.routing.route(PLANE_DMA, 0, 2)
