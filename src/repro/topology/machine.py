"""The :class:`Machine`: one NUMA host, fully described.

Besides the structural description (nodes, packages, links, devices), the
machine exposes the two *capacity models* every benchmark is built on:

* :meth:`Machine.dma_path_gbps` — sustainable bulk/DMA bandwidth between
  two nodes' memories (what device DMA engines and streaming ``memcpy``
  see);
* :meth:`Machine.pio_stream_gbps` — reported STREAM-style bandwidth for
  CPU threads on one node accessing memory of another (latency- and
  credit-bound coherent traffic).

Keeping both models on one object, fed by one link map, is what makes the
paper's "STREAM model disagrees with I/O model" result an emergent
property here instead of two unrelated lookup tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import TopologyError
from repro.interconnect.link import DirectedLink
from repro.interconnect.planes import PLANE_DMA, PLANE_PIO, Plane
from repro.routing.paths import Path
from repro.routing.table import RoutingTable
from repro.units import NS

__all__ = ["Machine", "MachineParams", "Relation"]


class Relation(enum.Enum):
    """NUMA relation between two nodes, per the paper's §II-A terminology."""

    LOCAL = "local"
    NEIGHBOR = "neighbor"
    REMOTE = "remote"


@dataclass(frozen=True)
class MachineParams:
    """Host-wide calibration parameters.

    Parameters
    ----------
    local_latency_s:
        Load-to-use latency of a local DRAM access.
    pio_core_gbps_ns:
        Per-core streaming PIO constant: a core sustains
        ``pio_core_gbps_ns / latency_ns`` Gbps of reported STREAM
        bandwidth.  This is the product (outstanding window) x (bits per
        line) collapsed into one calibrated number.
    oslib_penalty:
        Multiplicative PIO throughput factor paid by threads running off
        ``os_node``: shared libraries and OS structures live on
        ``os_node``, so everyone else's instruction/metadata fetches cross
        the fabric (§IV-A's node-0 anomaly).
    os_node:
        Node holding the OS image (0 on Linux after boot).
    dma_per_thread_gbps:
        Ceiling on a single bulk-copy thread (one DMA-style engine
        context); Algorithm 1 uses one thread per core to overcome it.
    pio_request_frac / pio_response_frac:
        Fraction of reported STREAM bytes that crosses the request
        (cpu -> memory) and response (memory -> cpu) link directions.  For
        the Copy kernel the response path carries the read stream plus the
        read-for-ownership fill (1.0 of reported bytes) and the request
        path carries the write-back stream (0.5).
    router_latency_s:
        Per-hop latency added by intermediate routing (node controllers on
        glued topologies like the 32-node blade).
    llc_bytes:
        Last-level cache per die (5 MB on the Opteron 6136); STREAM's
        "arrays at least 4x the largest cache" rule validates against it.
    description:
        Free-form provenance note rendered in reports.
    """

    local_latency_s: float = 100 * NS
    pio_core_gbps_ns: float = 775.0
    oslib_penalty: float = 0.92
    os_node: int = 0
    dma_per_thread_gbps: float = 16.0
    pio_request_frac: float = 0.5
    pio_response_frac: float = 1.0
    router_latency_s: float = 0.0
    llc_bytes: int = 5_000_000
    description: str = ""

    def __post_init__(self) -> None:
        if self.local_latency_s <= 0:
            raise TopologyError("local_latency_s must be positive")
        if self.pio_core_gbps_ns <= 0:
            raise TopologyError("pio_core_gbps_ns must be positive")
        if not 0 < self.oslib_penalty <= 1:
            raise TopologyError("oslib_penalty must be in (0, 1]")
        if self.dma_per_thread_gbps <= 0:
            raise TopologyError("dma_per_thread_gbps must be positive")
        if self.pio_request_frac < 0 or self.pio_response_frac <= 0:
            raise TopologyError("PIO traffic fractions must be non-negative/positive")


class Machine:
    """A complete NUMA host description.

    Built by the functions in :mod:`repro.topology.builders`; most users
    never construct one directly.  The constructor validates structural
    consistency (every link endpoint exists, packages partition the
    nodes, ...).
    """

    def __init__(
        self,
        name: str,
        nodes: Iterable[Any],
        packages: Iterable[Any],
        links: Iterable[DirectedLink],
        params: MachineParams | None = None,
    ) -> None:
        self.name = name
        self.params = params or MachineParams()
        self._nodes = {n.node_id: n for n in nodes}
        self._packages = {p.package_id: p for p in packages}
        self._links: dict[tuple[int, int], DirectedLink] = {}
        for link in links:
            if link.ends in self._links:
                raise TopologyError(f"duplicate link direction {link.ends} on {name}")
            self._links[link.ends] = link
        #: Devices attached to this host, name -> device object
        #: (populated by :func:`repro.devices.attach.attach_device`).
        self.devices: dict[str, Any] = {}
        self._validate()
        self._routing = RoutingTable(self._links)

    # --- validation ------------------------------------------------------
    def _validate(self) -> None:
        if not self._nodes:
            raise TopologyError(f"machine {self.name!r} has no nodes")
        listed = [nid for p in self._packages.values() for nid in p.node_ids]
        if sorted(listed) != sorted(self._nodes):
            raise TopologyError(
                f"machine {self.name!r}: packages do not partition the node set "
                f"(packages list {sorted(listed)}, nodes are {sorted(self._nodes)})"
            )
        for node in self._nodes.values():
            if node.package_id not in self._packages:
                raise TopologyError(
                    f"node {node.node_id} references unknown package {node.package_id}"
                )
            if node.node_id not in self._packages[node.package_id].node_ids:
                raise TopologyError(
                    f"node {node.node_id} not listed in its package {node.package_id}"
                )
        for (src, dst), _link in self._links.items():
            if src not in self._nodes or dst not in self._nodes:
                raise TopologyError(f"link {src}->{dst} references an unknown node")
        core_ids = [c.core_id for n in self._nodes.values() for c in n.cores]
        if len(set(core_ids)) != len(core_ids):
            raise TopologyError(f"machine {self.name!r}: duplicate core ids")

    # --- structure queries -------------------------------------------------
    @property
    def node_ids(self) -> tuple[int, ...]:
        """Sorted node ids."""
        return tuple(sorted(self._nodes))

    @property
    def n_nodes(self) -> int:
        """Number of NUMA nodes."""
        return len(self._nodes)

    @property
    def n_cores(self) -> int:
        """Total core count."""
        return sum(n.n_cores for n in self._nodes.values())

    def node(self, node_id: int):
        """The :class:`~repro.topology.node.NumaNode` with this id."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise TopologyError(f"{self.name!r} has no node {node_id}") from exc

    @property
    def packages(self) -> dict[int, Any]:
        """Package id -> :class:`~repro.topology.node.Package`."""
        return dict(self._packages)

    @property
    def links(self) -> dict[tuple[int, int], DirectedLink]:
        """Directed link map, ``(src, dst) -> link``."""
        return dict(self._links)

    def link(self, src: int, dst: int) -> DirectedLink:
        """The directed link ``src -> dst``; raises if absent."""
        try:
            return self._links[(src, dst)]
        except KeyError as exc:
            raise TopologyError(f"{self.name!r} has no link {src}->{dst}") from exc

    def relation(self, a: int, b: int) -> Relation:
        """LOCAL, NEIGHBOR (same package) or REMOTE, per the paper's terms."""
        if a == b:
            return Relation.LOCAL
        if self.node(a).package_id == self.node(b).package_id:
            return Relation.NEIGHBOR
        return Relation.REMOTE

    def cores_per_node(self) -> int:
        """Cores per node (the paper's thread count for node-level tests)."""
        counts = {n.n_cores for n in self._nodes.values()}
        if len(counts) != 1:
            raise TopologyError(f"{self.name!r} has heterogeneous core counts: {counts}")
        return counts.pop()

    # --- routing ------------------------------------------------------------
    @property
    def routing(self) -> RoutingTable:
        """The static routing table (explicit overrides allowed)."""
        return self._routing

    def path(self, plane: Plane, src: int, dst: int) -> Path:
        """The routed :class:`~repro.routing.paths.Path` for this plane."""
        hops = self._routing.route(plane, src, dst)
        return Path(plane=plane, hops=hops, links=self._routing.route_links(plane, src, dst))

    # --- capacity models ------------------------------------------------------
    def dma_path_gbps(self, src: int, dst: int) -> float:
        """Bulk/DMA bandwidth moving data from node ``src`` memory to ``dst``.

        The minimum of the source controller read rate, destination
        controller write rate, and the DMA-plane bottleneck link.  This is
        the quantity Algorithm 1 estimates empirically and that device DMA
        engines experience.
        """
        ctrl = min(self.node(src).dram_gbps, self.node(dst).dram_gbps)
        if src == dst:
            return ctrl
        return min(ctrl, self.path(PLANE_DMA, src, dst).dma_bottleneck_gbps())

    def pio_round_trip_s(self, cpu_node: int, mem_node: int) -> float:
        """Request+response latency for a coherent access cpu -> mem."""
        base = self.params.local_latency_s
        if cpu_node == mem_node:
            return base
        fwd = self.path(PLANE_PIO, cpu_node, mem_node)
        rev = self.path(PLANE_PIO, mem_node, cpu_node)
        hop_cost = self.params.router_latency_s * (fwd.n_hops + rev.n_hops)
        return base + fwd.latency_one_way_s() + rev.latency_one_way_s() + hop_cost

    def pio_stream_gbps(self, cpu_node: int, mem_node: int, threads: int | None = None) -> float:
        """Reported STREAM-Copy bandwidth, ``threads`` on ``cpu_node``
        against arrays on ``mem_node`` (no measurement noise).

        Composition: per-core latency-bound rate x threads, capped by the
        response-direction link caps (1.0 x reported bytes), the
        request-direction caps (``pio_request_frac`` x reported bytes),
        and the memory-node controller; scaled by the shared-library
        penalty when the threads run off the OS node.
        """
        if threads is None:
            threads = self.node(cpu_node).n_cores
        if threads <= 0:
            raise TopologyError(f"thread count must be positive, got {threads}")
        latency_ns = self.pio_round_trip_s(cpu_node, mem_node) / NS
        rate = threads * self.params.pio_core_gbps_ns / latency_ns
        rate = min(rate, self.node(mem_node).pio_ctrl_gbps)
        if cpu_node != mem_node:
            request = self.path(PLANE_PIO, cpu_node, mem_node)
            response = self.path(PLANE_PIO, mem_node, cpu_node)
            rate = min(rate, response.pio_bottleneck_gbps() / self.params.pio_response_frac)
            if self.params.pio_request_frac > 0:
                rate = min(rate, request.pio_bottleneck_gbps() / self.params.pio_request_frac)
        if cpu_node != self.params.os_node:
            rate *= self.params.oslib_penalty
        return rate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Machine({self.name!r}, nodes={self.n_nodes}, cores={self.n_cores}, "
            f"links={len(self._links)}, devices={sorted(self.devices)})"
        )
