"""Time-domain flow simulation."""

import pytest

from repro.errors import SimulationError
from repro.flows.flow import Flow
from repro.flows.network import FlowNetwork
from repro.units import gbps_to_bytes_per_s


class TestSimulate:
    def test_single_flow_duration(self):
        net = FlowNetwork({"r": 8.0})
        size = gbps_to_bytes_per_s(8.0) * 10  # 10 seconds at full rate
        out = net.simulate([Flow(name="f", resources=("r",), size_bytes=size)])
        assert out["f"].finish_s == pytest.approx(10.0)
        assert out["f"].avg_gbps == pytest.approx(8.0)

    def test_equal_flows_finish_together(self):
        net = FlowNetwork({"r": 10.0})
        size = gbps_to_bytes_per_s(5.0) * 4
        flows = [Flow(name=f"f{i}", resources=("r",), size_bytes=size)
                 for i in range(2)]
        out = net.simulate(flows)
        assert out["f0"].finish_s == pytest.approx(out["f1"].finish_s)
        assert out["f0"].avg_gbps == pytest.approx(5.0)

    def test_survivor_speeds_up(self):
        # Two flows share; the small one finishes, the big one then gets
        # the whole resource.
        net = FlowNetwork({"r": 10.0})
        small = gbps_to_bytes_per_s(5.0) * 2  # 2 s at half rate
        big = gbps_to_bytes_per_s(5.0) * 6
        out = net.simulate([
            Flow(name="small", resources=("r",), size_bytes=small),
            Flow(name="big", resources=("r",), size_bytes=big),
        ])
        assert out["small"].finish_s == pytest.approx(2.0)
        # big: 2 s at 5 Gbps, remaining 20 Gbit at 10 Gbps -> 2 more s.
        assert out["big"].finish_s == pytest.approx(4.0)
        assert out["big"].avg_gbps > 5.0

    def test_staggered_arrival(self):
        net = FlowNetwork({"r": 10.0})
        size = gbps_to_bytes_per_s(10.0) * 2
        out = net.simulate([
            Flow(name="early", resources=("r",), size_bytes=size, start_s=0.0),
            Flow(name="late", resources=("r",), size_bytes=size, start_s=100.0),
        ])
        assert out["early"].finish_s == pytest.approx(2.0)
        assert out["late"].start_s == 100.0
        assert out["late"].finish_s == pytest.approx(102.0)

    def test_requires_sizes(self):
        net = FlowNetwork({"r": 1.0})
        with pytest.raises(SimulationError):
            net.simulate([Flow(name="f", resources=("r",))])

    def test_rates_only_api(self):
        net = FlowNetwork({"r": 6.0})
        rates = net.rates([Flow(name=f"f{i}", resources=("r",)) for i in range(3)])
        assert sum(rates.values()) == pytest.approx(6.0)


class TestAggregate:
    def test_aggregate_over_busy_interval(self):
        net = FlowNetwork({"r": 10.0})
        size = gbps_to_bytes_per_s(5.0) * 4
        out = net.simulate([
            Flow(name=f"f{i}", resources=("r",), size_bytes=size) for i in range(2)
        ])
        assert net.aggregate_gbps(out) == pytest.approx(10.0)

    def test_aggregate_rejects_empty(self):
        with pytest.raises(SimulationError):
            FlowNetwork({}).aggregate_gbps({})


class TestOutcome:
    def test_outcome_fields(self):
        net = FlowNetwork({"r": 8.0})
        size = gbps_to_bytes_per_s(8.0) * 1
        out = net.simulate([Flow(name="f", resources=("r",), size_bytes=size)])
        o = out["f"]
        assert o.name == "f"
        assert o.bytes_moved == pytest.approx(size)
        assert o.duration_s == pytest.approx(1.0)
