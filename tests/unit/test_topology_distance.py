"""Hop and SLIT distance matrices."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.interconnect.link import link_pair
from repro.topology.distance import distance_matrix, hop_matrix
from repro.topology.machine import Machine
from repro.topology.node import Core, NumaNode, Package


class TestHopMatrix:
    def test_diagonal_is_zero(self, host):
        hops = hop_matrix(host)
        assert (np.diag(hops) == 0).all()

    def test_symmetric(self, host):
        hops = hop_matrix(host)
        assert (hops == hops.T).all()

    def test_neighbors_are_one_hop(self, host):
        hops = hop_matrix(host)
        assert hops[6, 7] == 1
        assert hops[0, 1] == 1

    def test_variant_a_example(self, variant_a):
        # Paper §II-A: node 7 is one hop from {0,2,4}, two from {1,3,5}.
        hops = hop_matrix(variant_a)
        for near in (0, 2, 4):
            assert hops[7, near] == 1
        for far in (1, 3, 5):
            assert hops[7, far] == 2

    def test_disconnected_raises(self):
        nodes = [
            NumaNode(node_id=i, package_id=i,
                     cores=(Core(core_id=i, node_id=i),))
            for i in range(3)
        ]
        packages = [Package(package_id=i, node_ids=(i,)) for i in range(3)]
        machine = Machine("split", nodes, packages, link_pair(0, 1, 16, 3.2))
        with pytest.raises(TopologyError):
            hop_matrix(machine)


class TestDistanceMatrix:
    def test_local_is_ten(self, host):
        dist = distance_matrix(host)
        assert (np.diag(dist) == 10).all()

    def test_linear_in_hops(self, host):
        hops = hop_matrix(host)
        dist = distance_matrix(host, per_hop=6, base=10)
        assert (dist == 10 + 6 * hops).all()
