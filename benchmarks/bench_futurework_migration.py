"""FW1 — future work: online placement and migration policies."""


def test_futurework_migration(run_paper_experiment):
    result = run_paper_experiment("fw1")
    assert result.data["class-spread"] < result.data["local"]
