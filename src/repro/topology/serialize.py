"""Machine (de)serialisation.

A machine description — nodes, packages, directed links with their
per-plane parameters, host parameters — round-trips through a plain
JSON-compatible dict.  This is how a user records a characterised host
(``repro-numa hardware`` territory) or shares a calibration, and it
keeps machine descriptions diffable in version control.

Devices are *not* serialised here: their response curves belong to the
device vendor model (:mod:`repro.devices`), and
:func:`machine_from_dict` leaves the ``devices`` map empty for the
caller to re-attach.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import TopologyError
from repro.interconnect.link import DirectedLink, LinkKind
from repro.topology.machine import Machine, MachineParams
from repro.topology.node import Core, NumaNode, Package

__all__ = ["machine_to_dict", "machine_from_dict", "components_from_dict"]

_FORMAT_VERSION = 1


def machine_to_dict(machine: Machine) -> dict[str, Any]:
    """A JSON-compatible description of ``machine`` (excluding devices)."""
    params = machine.params
    return {
        "format_version": _FORMAT_VERSION,
        "name": machine.name,
        "params": {
            "local_latency_s": params.local_latency_s,
            "pio_core_gbps_ns": params.pio_core_gbps_ns,
            "oslib_penalty": params.oslib_penalty,
            "os_node": params.os_node,
            "dma_per_thread_gbps": params.dma_per_thread_gbps,
            "pio_request_frac": params.pio_request_frac,
            "pio_response_frac": params.pio_response_frac,
            "router_latency_s": params.router_latency_s,
            "llc_bytes": params.llc_bytes,
            "description": params.description,
        },
        "nodes": [
            {
                "node_id": node.node_id,
                "package_id": node.package_id,
                "core_ids": [c.core_id for c in node.cores],
                "memory_bytes": node.memory_bytes,
                "dram_gbps": node.dram_gbps,
                "pio_ctrl_gbps": node.pio_ctrl_gbps,
                "os_resident_bytes": node.os_resident_bytes,
            }
            for node in (machine.node(n) for n in machine.node_ids)
        ],
        "packages": [
            {"package_id": pkg.package_id, "node_ids": list(pkg.node_ids)}
            for pkg in (machine.packages[p] for p in sorted(machine.packages))
        ],
        "links": [
            {
                "src": link.src,
                "dst": link.dst,
                "width_bits": link.width_bits,
                "gts": link.gts,
                "kind": link.kind.value,
                "dma_credit": link.dma_credit,
                "pio_cap_gbps": link.pio_cap_gbps,
                "pio_latency_s": link.pio_latency_s,
            }
            for _ends, link in sorted(machine.links.items())
        ],
    }


def components_from_dict(
    data: Mapping[str, Any],
) -> tuple[str, list[NumaNode], list[Package], list[DirectedLink], MachineParams]:
    """Validate a description dict into ``Machine`` constructor arguments.

    Shared by :func:`machine_from_dict` and machine *views* that subclass
    :class:`Machine` (e.g. :class:`repro.faults.plan.FaultedMachine`) and
    therefore cannot go through the plain factory.
    """
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise TopologyError(
            f"unsupported machine format version {version!r} "
            f"(this library writes {_FORMAT_VERSION})"
        )
    try:
        params = MachineParams(**data["params"])
        nodes = [
            NumaNode(
                node_id=entry["node_id"],
                package_id=entry["package_id"],
                cores=tuple(
                    Core(core_id=cid, node_id=entry["node_id"])
                    for cid in entry["core_ids"]
                ),
                memory_bytes=entry["memory_bytes"],
                dram_gbps=entry["dram_gbps"],
                pio_ctrl_gbps=entry["pio_ctrl_gbps"],
                os_resident_bytes=entry["os_resident_bytes"],
            )
            for entry in data["nodes"]
        ]
        packages = [
            Package(package_id=entry["package_id"],
                    node_ids=tuple(entry["node_ids"]))
            for entry in data["packages"]
        ]
        links = [
            DirectedLink(
                src=entry["src"],
                dst=entry["dst"],
                width_bits=entry["width_bits"],
                gts=entry["gts"],
                kind=LinkKind(entry["kind"]),
                dma_credit=entry["dma_credit"],
                pio_cap_gbps=entry["pio_cap_gbps"],
                pio_latency_s=entry["pio_latency_s"],
            )
            for entry in data["links"]
        ]
    except (KeyError, TypeError) as exc:
        raise TopologyError(f"malformed machine description: {exc}") from exc
    return data["name"], nodes, packages, links, params


def machine_from_dict(data: Mapping[str, Any]) -> Machine:
    """Rebuild a :class:`Machine` from :func:`machine_to_dict` output."""
    name, nodes, packages, links, params = components_from_dict(data)
    return Machine(name, nodes, packages, links, params)
