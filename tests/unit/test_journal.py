"""The crash-consistent journal: atomic writes, scanning, and resume."""

from __future__ import annotations

import json
import os
import zlib

import pytest

from repro.errors import JournalError
from repro.journal import (
    JOURNAL_FILENAME,
    JOURNAL_MAGIC,
    RunJournal,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    scan_journal,
)
from repro.journal.store import _HEADER, _record_bytes

META = {"command": "test", "machine": "reference", "seed": 42}


# --- atomic writers -------------------------------------------------------


def test_atomic_write_text_round_trip(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "hello\n")
    assert path.read_text() == "hello\n"
    atomic_write_text(path, "replaced\n")
    assert path.read_text() == "replaced\n"


def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "artifact.json"
    atomic_write_json(path, {"a": 1})
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]


def test_atomic_write_json_format(tmp_path):
    """Sorted keys, 2-space indent, trailing newline: json.dump parity."""
    path = tmp_path / "m.json"
    atomic_write_json(path, {"b": 2, "a": 1})
    text = path.read_text()
    assert text == json.dumps({"a": 1, "b": 2}, indent=2, sort_keys=True) + "\n"
    assert json.loads(text) == {"a": 1, "b": 2}


def test_atomic_write_sweeps_stale_temps(tmp_path):
    path = tmp_path / "snap.json"
    stale = tmp_path / "snap.json.tmp.99999"
    stale.write_text("half-written")
    atomic_write_json(path, [1, 2, 3])
    assert not stale.exists()
    assert json.loads(path.read_text()) == [1, 2, 3]


def test_atomic_write_json_unserializable_leaves_nothing(tmp_path):
    path = tmp_path / "bad.json"
    with pytest.raises(TypeError):
        atomic_write_json(path, {"handle": object()})
    assert list(tmp_path.iterdir()) == []  # no target, no temp


def test_atomic_write_failure_cleans_temp(tmp_path, monkeypatch):
    path = tmp_path / "out.bin"

    def boom(fd, data):
        raise OSError("disk full")

    monkeypatch.setattr(os, "write", boom)
    with pytest.raises(OSError):
        atomic_write_bytes(path, b"payload")
    monkeypatch.undo()
    assert list(tmp_path.iterdir()) == []


# --- scan_journal ---------------------------------------------------------


def _journal_with_units(tmp_path, n=3):
    with RunJournal(tmp_path, META) as journal:
        for i in range(n):
            journal.append(("unit", i), result={"value": i * 10})
    return tmp_path / JOURNAL_FILENAME


def test_scan_round_trip(tmp_path):
    path = _journal_with_units(tmp_path, n=3)
    records, good_end, torn = scan_journal(path)
    assert not torn
    assert good_end == path.stat().st_size
    assert records[0] == META
    assert [r["key"] for r in records[1:]] == [("unit", i) for i in range(3)]
    assert records[2]["result"] == {"value": 10}


def test_scan_empty_and_cut_magic(tmp_path):
    path = tmp_path / JOURNAL_FILENAME
    path.write_bytes(b"")
    assert scan_journal(path) == ([], 0, False)
    path.write_bytes(JOURNAL_MAGIC[:3])  # crash during creation
    assert scan_journal(path) == ([], 0, True)


def test_scan_rejects_foreign_file(tmp_path):
    path = tmp_path / JOURNAL_FILENAME
    path.write_bytes(b"not a journal at all")
    with pytest.raises(JournalError, match="bad magic"):
        scan_journal(path)


def test_scan_torn_header_and_payload(tmp_path):
    path = _journal_with_units(tmp_path, n=2)
    whole = path.read_bytes()
    _, good_end, _ = scan_journal(path)

    path.write_bytes(whole + b"\x07\x00")  # torn header
    records, end, torn = scan_journal(path)
    assert torn and end == good_end and len(records) == 3

    path.write_bytes(whole + _HEADER.pack(100, 0) + b"short")  # torn payload
    records, end, torn = scan_journal(path)
    assert torn and end == good_end and len(records) == 3


def test_scan_names_corrupt_record(tmp_path):
    path = _journal_with_units(tmp_path, n=2)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip a byte inside the last record's payload
    path.write_bytes(bytes(data))
    with pytest.raises(JournalError, match="record 2 is corrupt"):
        scan_journal(path)


def test_scan_names_unpicklable_record(tmp_path):
    path = tmp_path / JOURNAL_FILENAME
    payload = b"\x00\x01not pickle"
    record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    path.write_bytes(JOURNAL_MAGIC + _record_bytes(META) + record)
    with pytest.raises(JournalError, match="record 1 passed its checksum"):
        scan_journal(path)


# --- RunJournal lifecycle -------------------------------------------------


def test_create_then_resume(tmp_path):
    _journal_with_units(tmp_path, n=2)
    with RunJournal(tmp_path, META) as journal:
        assert journal.resumed_units == 2
        assert not journal.truncated_tail
        assert ("unit", 0) in journal and ("unit", 1) in journal
        assert journal.get(("unit", 0))["result"] == {"value": 0}
        assert journal.get(("unit", 9)) is None
        journal.append(("unit", 2), result={"value": 20})
        assert len(journal) == 3
    records, _, torn = scan_journal(tmp_path / JOURNAL_FILENAME)
    assert not torn and len(records) == 4


def test_resume_truncates_torn_tail(tmp_path):
    path = _journal_with_units(tmp_path, n=2)
    intact = path.stat().st_size
    with open(path, "ab") as handle:
        handle.write(_record_bytes({"key": ("unit", 2)})[: _HEADER.size + 3])
    with RunJournal(tmp_path, META) as journal:
        assert journal.truncated_tail
        assert journal.resumed_units == 2
        journal.append(("unit", 2), result={"value": 20})
    assert path.stat().st_size > intact
    records, _, torn = scan_journal(path)
    assert not torn and [r["key"] for r in records[1:]] == [
        ("unit", 0), ("unit", 1), ("unit", 2)
    ]


def test_meta_mismatch_names_differing_keys(tmp_path):
    _journal_with_units(tmp_path, n=1)
    with pytest.raises(JournalError, match="different run.*seed"):
        RunJournal(tmp_path, {**META, "seed": 7})


def test_duplicate_unit_rejected(tmp_path):
    with RunJournal(tmp_path, META) as journal:
        journal.append(("unit", 0), result=1)
        with pytest.raises(JournalError, match="already journaled"):
            journal.append(("unit", 0), result=2)


def test_torn_meta_record_starts_over(tmp_path):
    path = tmp_path / JOURNAL_FILENAME
    path.write_bytes(JOURNAL_MAGIC + _record_bytes(META)[:5])
    with RunJournal(tmp_path, META) as journal:
        assert journal.resumed_units == 0
        journal.append(("unit", 0), result=1)
    records, _, torn = scan_journal(path)
    assert not torn and records[0] == META and len(records) == 2


def test_crash_spec_parsing(tmp_path, monkeypatch):
    from repro.journal import CRASH_ENV

    monkeypatch.setenv(CRASH_ENV, "gibberish")
    with pytest.raises(JournalError, match="cannot parse"):
        RunJournal(tmp_path, META)
    monkeypatch.delenv(CRASH_ENV)
    assert RunJournal._parse_crash_spec(None) is None
    assert RunJournal._parse_crash_spec("3") == (3, False)
    assert RunJournal._parse_crash_spec("3:torn") == (3, True)
