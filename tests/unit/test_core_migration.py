"""Online placement and migration."""

import pytest

from repro.core.iomodel import IOModelBuilder
from repro.core.migration import (
    POLICIES,
    OnlineSimulator,
    OnlineWorkload,
    StreamJob,
)
from repro.errors import ModelError
from repro.rng import RngRegistry
from repro.units import GB


@pytest.fixture(scope="module")
def write_model(host):
    return IOModelBuilder(host, registry=RngRegistry(), runs=10).build(7, "write")


@pytest.fixture()
def simulator(host, write_model, registry):
    return OnlineSimulator(host, write_model, registry=registry)


@pytest.fixture()
def jobs(registry):
    return OnlineWorkload(registry, rate_per_s=0.15).generate(25, label="test")


class TestStreamJob:
    def test_valid(self):
        job = StreamJob(name="j", arrival_s=1.0, size_bytes=GB)
        assert job.remaining_bytes == GB
        assert job.node is None

    def test_bad_size_rejected(self):
        with pytest.raises(ModelError):
            StreamJob(name="j", arrival_s=0.0, size_bytes=0)

    def test_bad_direction_rejected(self):
        with pytest.raises(ModelError):
            StreamJob(name="j", arrival_s=0.0, size_bytes=GB, direction="up")


class TestWorkload:
    def test_sorted_arrivals(self, jobs):
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_deterministic(self):
        a = OnlineWorkload(RngRegistry(3)).generate(5)
        b = OnlineWorkload(RngRegistry(3)).generate(5)
        assert [(j.arrival_s, j.size_bytes) for j in a] == [
            (j.arrival_s, j.size_bytes) for j in b
        ]

    def test_directions_follow_fraction(self):
        jobs = OnlineWorkload(RngRegistry(), write_fraction=0.0).generate(10)
        assert all(j.direction == "read" for j in jobs)

    def test_validation(self):
        with pytest.raises(ModelError):
            OnlineWorkload(rate_per_s=0)
        with pytest.raises(ModelError):
            OnlineWorkload(write_fraction=2.0)
        with pytest.raises(ModelError):
            OnlineWorkload().generate(0)


class TestSimulator:
    def test_all_policies_complete_all_streams(self, simulator, jobs):
        for policy in POLICIES:
            outcome = simulator.run(jobs, policy)
            assert len(outcome.per_stream_completion_s) == len(jobs)
            assert outcome.mean_completion_s > 0

    def test_inputs_not_mutated(self, simulator, jobs):
        before = [(j.node, j.remaining_bytes) for j in jobs]
        simulator.run(jobs, "local")
        assert [(j.node, j.remaining_bytes) for j in jobs] == before

    def test_local_policy_never_migrates(self, simulator, jobs):
        assert simulator.run(jobs, "local").migrations == 0

    def test_migrate_policy_migrates_under_pressure(self, simulator, jobs):
        outcome = simulator.run(jobs, "class-migrate")
        assert outcome.migrations > 0

    def test_class_spread_beats_local(self, simulator, jobs):
        local = simulator.run(jobs, "local")
        spread = simulator.run(jobs, "class-spread")
        assert spread.mean_completion_s < local.mean_completion_s

    def test_unknown_policy_rejected(self, simulator, jobs):
        with pytest.raises(ModelError):
            simulator.run(jobs, "clairvoyant")

    def test_missing_device_rejected(self, write_model, registry):
        from repro.topology.builders import reference_host

        bare = reference_host(with_devices=False)
        with pytest.raises(ModelError):
            OnlineSimulator(bare, write_model, registry=registry)

    def test_deterministic(self, host, write_model):
        wl = OnlineWorkload(RngRegistry(9)).generate(10)
        a = OnlineSimulator(host, write_model, registry=RngRegistry(9)).run(wl, "random")
        b = OnlineSimulator(host, write_model, registry=RngRegistry(9)).run(wl, "random")
        assert a.mean_completion_s == b.mean_completion_s

    def test_single_stream_runs_at_cap(self, simulator):
        job = StreamJob(name="solo", arrival_s=0.0, size_bytes=40 * GB)
        outcome = simulator.run([job], "class-spread")
        # One RDMA_WRITE stream: per-stream cap 22.5 Gbps.
        duration = outcome.per_stream_completion_s["solo"]
        gbps = 40 * GB * 8 / 1e9 / duration
        assert gbps == pytest.approx(22.5, rel=0.02)

    def test_outcome_render(self, simulator, jobs):
        text = simulator.run(jobs, "local").render()
        assert "mean" in text and "Gbps" in text

    def test_mixed_direction_workload(self, host, write_model, registry):
        # Streams of both directions share the device; the simulator
        # must serve each at its own direction's service level.
        wl = OnlineWorkload(registry, rate_per_s=0.2, write_fraction=0.5)
        jobs = wl.generate(16, label="mixed")
        assert {j.direction for j in jobs} == {"write", "read"}
        sim = OnlineSimulator(host, write_model, registry=registry)
        outcome = sim.run(jobs, "class-spread")
        assert len(outcome.per_stream_completion_s) == 16
