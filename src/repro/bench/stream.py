"""The STREAM benchmark against the simulator.

Reproduces §III-B1/§IV-A faithfully:

* four kernels (Copy/Scale/Add/Triad) that "exhibit a similar
  performance on modern machines" — modelled as small multiplicative
  factors on the PIO capacity model;
* arrays at least four times the LLC (validated; the paper computes
  20 MB / 2,621,440 elements for the 5 MB Opteron LLC);
* one thread per core of the pinned node, ``numactl`` static binding
  for both CPU and memory;
* each configuration run ``runs`` times, the **maximum** reported.

Buffers are genuinely allocated through the page allocator with a hard
BIND, so a node without enough free memory fails the way ``mbind``
would.
"""

from __future__ import annotations

import numpy as np

from repro.bench.results import BandwidthMatrix, Measurement
from repro.errors import BenchmarkError
from repro.memory.allocator import PageAllocator
from repro.memory.policy import MemBinding
from repro.osmodel.noise import NoiseModel
from repro.rng import RngRegistry
from repro.solver.session import get_session
from repro.topology.machine import Machine

__all__ = ["StreamBenchmark", "STREAM_KERNELS"]

#: Kernel -> throughput factor relative to Copy.  STREAM's four kernels
#: differ by arithmetic intensity and array count; on the modelled
#: platforms they land within ~2 % of each other (§III-B1).
STREAM_KERNELS = {
    "copy": 1.0,
    "scale": 0.985,
    "add": 1.015,
    "triad": 1.005,
}


class StreamBenchmark:
    """STREAM with ``numactl``-style node binding.

    Parameters
    ----------
    machine:
        The host under test.
    registry:
        Seeded RNG registry (defaults to the library default seed).
    runs:
        Repetitions per configuration; the paper uses 100 and reports
        the max.
    kernel:
        One of :data:`STREAM_KERNELS`.
    array_bytes:
        Size of each array; defaults to exactly 4x LLC and must be at
        least that (STREAM's cache-defeat rule).
    sigma:
        Run-to-run lognormal noise.
    """

    def __init__(
        self,
        machine: Machine,
        registry: RngRegistry | None = None,
        runs: int = 100,
        kernel: str = "copy",
        array_bytes: int | None = None,
        sigma: float = 0.008,
    ) -> None:
        if kernel not in STREAM_KERNELS:
            raise BenchmarkError(
                f"unknown STREAM kernel {kernel!r}; pick from {sorted(STREAM_KERNELS)}"
            )
        if runs < 1:
            raise BenchmarkError(f"runs must be >= 1, got {runs}")
        min_bytes = 4 * machine.params.llc_bytes
        self.array_bytes = array_bytes if array_bytes is not None else min_bytes
        if self.array_bytes < min_bytes:
            raise BenchmarkError(
                f"STREAM arrays must be >= 4x LLC = {min_bytes} bytes to defeat "
                f"caching; got {self.array_bytes}"
            )
        self.machine = machine
        self.registry = registry or RngRegistry()
        self.runs = runs
        self.kernel = kernel
        self.sigma = sigma
        self.session = get_session(machine)
        # One allocator for the whole benchmark: measure() strictly
        # pairs allocate/release, so the pool state is identical at
        # every entry and the (hop-matrix) setup cost is paid once.
        self._allocator = PageAllocator(machine)

    @property
    def array_elements(self) -> int:
        """Array length in 8-byte elements (the paper quotes 2,621,440)."""
        return self.array_bytes // 8

    def _arrays_needed(self) -> int:
        """Copy/Scale touch 2 arrays, Add/Triad touch 3."""
        return 2 if self.kernel in ("copy", "scale") else 3

    def measure(
        self, cpu_node: int, mem_node: int, threads: int | None = None
    ) -> Measurement:
        """Benchmark one (CPU node, MEM node) binding.

        Allocates the kernel's arrays on ``mem_node`` with a hard BIND
        (mirroring ``numactl --membind``), runs the kernel ``runs``
        times, and reports the maximum.
        """
        if threads is None:
            threads = self.machine.node(cpu_node).n_cores
        allocator = self._allocator
        footprint = self._arrays_needed() * self.array_bytes * threads
        allocation = allocator.allocate(
            footprint, cpu_node=cpu_node, binding=MemBinding.bind(mem_node)
        )
        try:
            base = self.session.pio_stream_gbps(cpu_node, mem_node, threads)
            base *= STREAM_KERNELS[self.kernel]
            noise = NoiseModel(
                self.registry.stream(
                    f"stream/{self.kernel}/cpu{cpu_node}-mem{mem_node}-t{threads}"
                )
            )
            samples = base * noise.factors(self.sigma, self.runs)
            return Measurement.from_samples(samples, protocol="max")
        finally:
            allocator.release(allocation)

    def matrix(self, threads: int | None = None) -> BandwidthMatrix:
        """The full N x N characterization (the paper's Fig. 3)."""
        ids = self.machine.node_ids
        values = np.zeros((len(ids), len(ids)))
        for i, cpu in enumerate(ids):
            for j, mem in enumerate(ids):
                values[i, j] = self.measure(cpu, mem, threads).gbps
        return BandwidthMatrix(
            node_ids=ids,
            values=values,
            label=f"STREAM {self.kernel} (max of {self.runs} runs, Gbps)",
        )

    def cpu_centric(self, node: int, threads: int | None = None) -> dict[int, float]:
        """Fig. 4(a): STREAM on ``node`` accessing data on every node."""
        return {
            mem: self.measure(node, mem, threads).gbps for mem in self.machine.node_ids
        }

    def memory_centric(self, node: int, threads: int | None = None) -> dict[int, float]:
        """Fig. 4(b): data on ``node`` accessed from every node."""
        return {
            cpu: self.measure(cpu, node, threads).gbps for cpu in self.machine.node_ids
        }
