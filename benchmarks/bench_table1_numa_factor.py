"""T1 — Table I: NUMA factors of four server configurations."""


def test_table1_numa_factor(run_paper_experiment):
    result = run_paper_experiment("t1")
    assert len(result.data) == 4
