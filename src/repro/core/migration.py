"""Online placement and migration of parallel I/O streams.

The paper's first future-work item (§VI): "mechanisms of placing and
migrating parallel I/O threads for data-intensive applications based on
the result of our characterization methodology."  This module builds
that mechanism on top of the class model:

* :class:`OnlineWorkload` — a seeded multi-user arrival process of
  finite I/O streams hitting one device;
* placement policies — ``local`` (everything on the device node),
  ``random``, ``class-spread`` (least-loaded node of the equivalent
  classes, the §V-B advice applied online), and ``class-migrate``
  (streams *arrive* with the naive local placement — the Linux default
  an unmodified application gets — and the controller migrates them off
  oversubscribed or lower-class nodes at each epoch; this is the
  "migrating parallel I/O threads" mechanism of §VI applied to
  unmodified workloads);
* :class:`OnlineSimulator` — an event-driven run (arrivals, completions,
  migration epochs) whose instantaneous rates come from the same
  service-level model as the fio engines, so policies are compared on
  the exact physics the benchmarks validated.

Migration is not free: a migrated stream pays ``migration_cost_s`` of
stalled transfer (page unmap/copy/remap), so the policy must earn its
moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.engines import StreamPlacement, device_service_levels
from repro.errors import ModelError, SimulationError
from repro.flows.flow import Flow
from repro.core.model import IOPerformanceModel
from repro.core.scheduler_advisor import PlacementAdvisor
from repro.rng import RngRegistry
from repro.solver.session import get_session
from repro.topology.machine import Machine
from repro.units import GB, gbps, gbps_to_bytes_per_s

__all__ = [
    "StreamJob",
    "OnlineWorkload",
    "PolicyOutcome",
    "OnlineSimulator",
    "POLICIES",
]

#: Policy names accepted by :meth:`OnlineSimulator.run`.
POLICIES = ("local", "random", "class-spread", "class-migrate")


@dataclass
class StreamJob:
    """One finite I/O stream in the online workload."""

    name: str
    arrival_s: float
    size_bytes: float
    direction: str = "write"
    #: Assigned by the policy at arrival (and possibly re-assigned).
    node: int | None = None
    remaining_bytes: float = field(init=False)
    start_s: float | None = None
    finish_s: float | None = None
    migrations: int = 0
    #: Simulated time at which the stream may transfer again (migration stall).
    stalled_until_s: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ModelError(f"stream {self.name!r}: size must be positive")
        if self.direction not in ("write", "read"):
            raise ModelError(f"stream {self.name!r}: bad direction {self.direction!r}")
        self.remaining_bytes = float(self.size_bytes)


class OnlineWorkload:
    """Seeded multi-user arrival process.

    Poisson arrivals at ``rate_per_s``; sizes lognormal around
    ``mean_size_bytes``; direction drawn from ``write_fraction``.
    """

    def __init__(
        self,
        registry: RngRegistry | None = None,
        rate_per_s: float = 0.05,
        mean_size_bytes: float = 40 * GB,
        size_sigma: float = 0.35,
        write_fraction: float = 1.0,
    ) -> None:
        if rate_per_s <= 0 or mean_size_bytes <= 0:
            raise ModelError("workload rate and size must be positive")
        if not 0 <= write_fraction <= 1:
            raise ModelError("write_fraction must be in [0, 1]")
        self.registry = registry or RngRegistry()
        self.rate_per_s = rate_per_s
        self.mean_size_bytes = mean_size_bytes
        self.size_sigma = size_sigma
        self.write_fraction = write_fraction

    def generate(self, n_streams: int, label: str = "wl") -> list[StreamJob]:
        """``n_streams`` jobs with seeded arrivals and sizes."""
        if n_streams < 1:
            raise ModelError("need at least one stream")
        rng = self.registry.stream(f"workload/{label}")
        arrivals = np.cumsum(rng.exponential(1.0 / self.rate_per_s, n_streams))
        sizes = self.mean_size_bytes * np.exp(
            rng.normal(-0.5 * self.size_sigma**2, self.size_sigma, n_streams)
        )
        directions = np.where(
            rng.random(n_streams) < self.write_fraction, "write", "read"
        )
        return [
            StreamJob(
                name=f"{label}/{i}",
                arrival_s=float(arrivals[i]),
                size_bytes=float(sizes[i]),
                direction=str(directions[i]),
            )
            for i in range(n_streams)
        ]


@dataclass(frozen=True)
class PolicyOutcome:
    """Result of one policy over one workload."""

    policy: str
    mean_completion_s: float
    p95_completion_s: float
    makespan_s: float
    aggregate_gbps: float
    migrations: int
    per_stream_completion_s: dict[str, float]
    solver_stats: dict = field(default_factory=dict)

    def render(self) -> str:
        """One summary line."""
        return (
            f"{self.policy:14s} mean {self.mean_completion_s:8.1f} s, "
            f"p95 {self.p95_completion_s:8.1f} s, aggregate "
            f"{self.aggregate_gbps:5.2f} Gbps, {self.migrations} migrations"
        )


class OnlineSimulator:
    """Event-driven online placement simulation against one device.

    Parameters
    ----------
    machine:
        Host with the target device attached.
    model:
        The memcpy class model of the device's node (drives the
        class-aware policies; ``local``/``random`` ignore it).
    device_name / engine:
        Which device and protocol family streams use; write-direction
        streams get the family's write profile and read-direction
        streams its read profile.
    tolerance:
        Class-equivalence tolerance for the advisor.
    epoch_s:
        Migration-policy re-evaluation period.
    migration_cost_s:
        Transfer stall paid per migrated stream.
    """

    #: Protocol family -> per-direction device profile names.
    ENGINE_PROFILES = {
        "rdma": {"write": "rdma_write", "read": "rdma_read"},
        "tcp": {"write": "tcp_send", "read": "tcp_recv"},
        "libaio": {"write": "libaio_write", "read": "libaio_read"},
    }

    def __init__(
        self,
        machine: Machine,
        model: IOPerformanceModel,
        device_name: str = "nic",
        engine: str = "rdma",
        registry: RngRegistry | None = None,
        tolerance: float = 0.05,
        epoch_s: float = 20.0,
        migration_cost_s: float = 0.5,
    ) -> None:
        device = machine.devices.get(device_name)
        if device is None:
            raise ModelError(
                f"machine {machine.name!r} has no device {device_name!r}"
            )
        if engine not in self.ENGINE_PROFILES:
            raise ModelError(
                f"unknown engine {engine!r}; choose from "
                f"{sorted(self.ENGINE_PROFILES)}"
            )
        self.machine = machine
        self.model = model
        self.device = device
        self.profiles = {
            direction: device.engine(name)
            for direction, name in self.ENGINE_PROFILES[engine].items()
        }
        #: Write-side profile drives stream caps / noise defaults.
        self.profile = self.profiles["write"]
        self.registry = registry or RngRegistry()
        self.advisor = PlacementAdvisor(machine, model, tolerance=tolerance)
        self.epoch_s = epoch_s
        self.migration_cost_s = migration_cost_s
        # Event-loop allocations share the machine's solver session, so
        # recurring active sets are served from the memo.
        self.session = get_session(machine)
        # Candidate nodes for the class-aware policies, best class first.
        self._candidates = list(self.advisor.candidate_nodes())

    # --- placement decisions ---------------------------------------------
    def _load(self, active: list[StreamJob]) -> dict[int, int]:
        load = {n: 0 for n in self.machine.node_ids}
        for job in active:
            if job.node is not None:
                load[job.node] += 1
        return load

    def _place(self, policy: str, job: StreamJob, active: list[StreamJob],
               rng: np.random.Generator) -> int:
        if policy in ("local", "class-migrate"):
            # class-migrate models unmodified applications: they arrive
            # with the kernel's local-preferred placement and only the
            # migration controller moves them later.
            return self.device.node_id
        if policy == "random":
            return int(rng.choice(self.machine.node_ids))
        # class-spread: least-loaded candidate node at admission.
        load = self._load(active)
        return min(self._candidates, key=lambda n: (load[n], n))

    def _plan_migrations(self, now: float, active: list[StreamJob]) -> int:
        """class-migrate epochs: drain oversubscribed/non-candidate nodes."""
        load = self._load(active)
        moved = 0
        for job in sorted(active, key=lambda j: j.name):
            if job.node is None:
                continue
            cores = self.machine.node(job.node).n_cores
            over = load[job.node] > cores
            off_class = job.node not in self._candidates
            if not (over or off_class):
                continue
            target = min(self._candidates, key=lambda n: (load[n], n))
            has_room = load[target] < self.machine.node(target).n_cores
            if target != job.node and (off_class or has_room):
                load[job.node] -= 1
                load[target] += 1
                job.node = target
                job.migrations += 1
                job.stalled_until_s = max(job.stalled_until_s, now) + self.migration_cost_s
                moved += 1
        return moved

    # --- rate computation ---------------------------------------------------
    def _rates(self, now: float, active: list[StreamJob]) -> dict[str, float]:
        running = [j for j in active if j.stalled_until_s <= now]
        if not running:
            return {}
        placements = [
            StreamPlacement(cpu_node=j.node, mem_node=j.node) for j in running
        ]
        # Direction mixes are legal; compute level vectors per direction
        # once and pick each stream's entry from its own direction.
        directions = {j.direction for j in running}
        by_direction = {
            d: device_service_levels(
                self.machine, self.device, self.profiles[d], placements, d,
                session=self.session,
            )
            for d in directions
        }
        levels = [by_direction[j.direction][i] for i, j in enumerate(running)]
        n = len(running)
        ways = max(1.0, n / self.device.dma.contexts)
        resource = f"dev:{self.device.name}"
        flows = []
        for j, level in zip(running, levels):
            profile = self.profiles[j.direction]
            demand = level / ways
            if profile.per_stream_cap_gbps is not None:
                demand = min(demand, profile.per_stream_cap_gbps)
            if profile.cpu_gbps_per_stream is not None:
                demand = min(demand, profile.cpu_gbps_per_stream)
            flows.append(Flow(name=j.name, resources=(resource,), demand_gbps=demand))
        agg = sum(levels) / len(levels)
        return self.session.rates(flows, {resource: agg})

    # --- the event loop ---------------------------------------------------
    def run(self, jobs: list[StreamJob], policy: str) -> PolicyOutcome:
        """Simulate one policy over (fresh copies of) ``jobs``."""
        if policy not in POLICIES:
            raise ModelError(f"unknown policy {policy!r}; choose from {POLICIES}")
        rng = self.registry.stream(f"online/{policy}")
        pending = sorted(
            (StreamJob(name=j.name, arrival_s=j.arrival_s,
                       size_bytes=j.size_bytes, direction=j.direction)
             for j in jobs),
            key=lambda j: (j.arrival_s, j.name),
        )
        active: list[StreamJob] = []
        done: list[StreamJob] = []
        now = 0.0
        next_epoch = self.epoch_s
        migrations = 0
        guard = 0

        while pending or active:
            guard += 1
            if guard > 200_000:  # pragma: no cover - safety valve
                raise SimulationError("online simulation failed to converge")
            # Admit arrivals due now.
            while pending and pending[0].arrival_s <= now + 1e-12:
                job = pending.pop(0)
                job.node = self._place(policy, job, active, rng)
                job.start_s = now
                active.append(job)
            if not active:
                now = pending[0].arrival_s
                continue

            # Process any migration epochs that are due (idle jumps can
            # skip several at once).
            if policy == "class-migrate":
                while now >= next_epoch - 1e-12:
                    migrations += self._plan_migrations(now, active)
                    next_epoch += self.epoch_s

            rates = self._rates(now, active)
            horizon = float("inf")
            if pending:
                horizon = min(horizon, pending[0].arrival_s - now)
            if policy == "class-migrate":
                horizon = min(horizon, next_epoch - now)
            for job in active:
                if job.stalled_until_s > now:
                    horizon = min(horizon, job.stalled_until_s - now)
                elif job.name in rates and rates[job.name] > 0:
                    horizon = min(
                        horizon,
                        job.remaining_bytes
                        / gbps_to_bytes_per_s(rates[job.name]),
                    )
            if horizon == float("inf") or horizon < 0:
                raise SimulationError("no progress horizon in online simulation")

            for job in active:
                if job.name in rates and job.stalled_until_s <= now:
                    job.remaining_bytes -= (
                        gbps_to_bytes_per_s(rates[job.name]) * horizon
                    )
            now += horizon

            still = []
            for job in active:
                if job.remaining_bytes <= max(1.0, 1e-9 * job.size_bytes):
                    job.finish_s = now
                    done.append(job)
                else:
                    still.append(job)
            active = still

        completions = {
            j.name: j.finish_s - j.arrival_s for j in done  # type: ignore[operator]
        }
        times = np.array(sorted(completions.values()))
        total_bytes = sum(j.size_bytes for j in done)
        makespan = max(j.finish_s for j in done) - min(j.arrival_s for j in done)
        return PolicyOutcome(
            policy=policy,
            mean_completion_s=float(times.mean()),
            p95_completion_s=float(np.percentile(times, 95)),
            makespan_s=makespan,
            aggregate_gbps=gbps(total_bytes, makespan),
            migrations=migrations + sum(j.migrations for j in done),
            per_stream_completion_s=completions,
            solver_stats=self.session.stats.snapshot(),
        )

    def compare(self, jobs: list[StreamJob], policies=POLICIES) -> dict[str, PolicyOutcome]:
        """Run several policies over the same workload."""
        return {policy: self.run(jobs, policy) for policy in policies}
