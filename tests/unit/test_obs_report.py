"""The obs report renderer and the CLI's --obs-dir / obs report plumbing."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.errors import ObsError
from repro.obs import load_trace, render_diff, render_report


@pytest.fixture(autouse=True)
def _fresh_solver_sessions():
    """Recordings fold solver counters; isolate them per test."""
    from repro.solver import reset_sessions

    reset_sessions()
    yield
    reset_sessions()


def _record_run(obs_dir, seed=None) -> str:
    argv = ["experiment", "f10", "--quick", "--obs-dir", str(obs_dir)]
    if seed is not None:
        argv = ["--seed", str(seed)] + argv
    assert main(argv) == 0
    return str(obs_dir)


def test_obs_dir_records_without_changing_stdout(tmp_path, capsys):
    assert main(["experiment", "f10", "--quick"]) == 0
    plain = capsys.readouterr().out
    _record_run(tmp_path / "run")
    recorded = capsys.readouterr().out
    assert recorded == plain  # telemetry never changes computed output
    assert (tmp_path / "run" / "manifest.json").exists()
    assert (tmp_path / "run" / "trace.jsonl").exists()


def test_report_renders_spans_and_counters(tmp_path, capsys):
    run = _record_run(tmp_path / "run")
    capsys.readouterr()
    assert main(["obs", "report", run]) == 0
    out = capsys.readouterr().out
    assert "OBS RUN REPORT" in out
    assert "experiment.f10" in out
    assert "rng.draws/" in out
    assert "solver.solves" in out


def test_report_diff_on_two_seeded_runs_is_deterministic(tmp_path, capsys):
    a = _record_run(tmp_path / "a", seed=7)
    from repro.solver import reset_sessions

    reset_sessions()
    b = _record_run(tmp_path / "b", seed=7)
    capsys.readouterr()
    assert main(["obs", "report", a, b]) == 0
    out = capsys.readouterr().out
    assert "counters: identical" in out
    assert "deterministic twins" in out


def test_report_diff_flags_different_seeds(tmp_path, capsys):
    a = _record_run(tmp_path / "a", seed=7)
    from repro.solver import reset_sessions

    reset_sessions()
    b = _record_run(tmp_path / "b", seed=8)
    capsys.readouterr()
    assert main(["obs", "report", a, b]) == 0
    out = capsys.readouterr().out
    assert "root_seed" in out
    assert "runs differ beyond wall time" in out


def test_report_json_round_trips(tmp_path, capsys):
    run = _record_run(tmp_path / "run")
    capsys.readouterr()
    assert main(["obs", "report", run, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["command"] == "experiment"
    assert payload["metrics"]["counters"]


def test_trace_events_nest_consistently(tmp_path):
    run = _record_run(tmp_path / "run")
    events = load_trace(run)
    assert events, "trace must not be empty"
    by_seq = {e["seq"]: e for e in events}
    for event in events:
        assert event["wall_s"] >= 0.0
        assert "start_s" in event  # relative clock, no absolute timestamps
        if event["parent"] is not None:
            assert by_seq[event["parent"]]["depth"] == event["depth"] - 1


def test_render_report_missing_dir_raises(tmp_path):
    with pytest.raises(ObsError):
        render_report(tmp_path / "nowhere")


def test_render_diff_requires_manifests(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    with pytest.raises(ObsError):
        render_diff(tmp_path / "a", tmp_path / "b")


def test_obs_report_rejects_three_dirs(tmp_path, capsys):
    run = _record_run(tmp_path / "run")
    capsys.readouterr()
    assert main(["obs", "report", run, run, run]) == 2
    assert "one dir" in capsys.readouterr().err


def test_experiment_id_aliases():
    from repro.experiments.registry import normalize_experiment_id

    assert normalize_experiment_id("fig10") == "f10"
    assert normalize_experiment_id("FIG10") == "f10"
    assert normalize_experiment_id("figure10") == "f10"
    assert normalize_experiment_id("table4") == "t4"
    assert normalize_experiment_id("f10") == "f10"
    assert normalize_experiment_id("fw1") == "fw1"  # never rewritten
    assert normalize_experiment_id("bogus") == "bogus"


# --- span-driven phase triage (PR 7) --------------------------------------


def _manifest_with_phases(phases):
    return {"phases": {n: {"wall_s": w} for n, w in phases.items()}}


class TestPhaseRegressions:
    def test_flags_shifts_outside_the_band(self):
        from repro.obs import phase_regressions

        a = _manifest_with_phases({"solve": 0.10, "build": 0.10})
        b = _manifest_with_phases({"solve": 0.30, "build": 0.11})
        shifts = phase_regressions(a, b, tolerance=0.5)
        assert list(shifts) == ["solve"]
        assert shifts["solve"]["wall_s"] == (0.10, 0.30)
        assert shifts["solve"]["ratio"] == pytest.approx(3.0)

    def test_band_is_symmetric(self):
        from repro.obs import phase_regressions

        a = _manifest_with_phases({"solve": 0.30})
        b = _manifest_with_phases({"solve": 0.10})
        assert "solve" in phase_regressions(a, b, tolerance=0.5)
        assert phase_regressions(a, b, tolerance=0.9) == {}

    def test_min_wall_floor_ignores_noise_spans(self):
        from repro.obs import phase_regressions

        a = _manifest_with_phases({"tiny": 0.0001})
        b = _manifest_with_phases({"tiny": 0.0009})
        assert phase_regressions(a, b) == {}  # 9x shift, but sub-floor
        assert "tiny" in phase_regressions(a, b, min_wall_s=0.0005)

    def test_phase_only_in_one_manifest(self):
        from repro.obs import phase_regressions

        a = _manifest_with_phases({"old": 0.10})
        b = _manifest_with_phases({"new": 0.10})
        shifts = phase_regressions(a, b)
        assert shifts["new"]["ratio"] == float("inf")
        assert shifts["old"]["ratio"] == 0.0

    def test_missing_phases_section(self):
        from repro.obs import phase_regressions

        assert phase_regressions({}, {}) == {}


def test_render_phase_triage_between_recorded_runs(tmp_path):
    from repro.obs import render_phase_triage

    _record_run(tmp_path / "a", seed=1)
    _record_run(tmp_path / "b", seed=1)
    text = render_phase_triage(tmp_path / "a", tmp_path / "b", tolerance=1e9)
    assert text.startswith("phase triage: no span shifted")

    flagged = render_phase_triage(tmp_path / "a", tmp_path / "b",
                                  tolerance=-1.0, min_wall_s=0.0)
    assert "span(s) shifted" in flagged  # every measurable span flagged


def test_cli_obs_report_phase_tolerance_and_gate(tmp_path, capsys):
    _record_run(tmp_path / "a", seed=1)
    # Dir B is dir A with one phase blown up 100x past the floor, so
    # the gate's verdict does not depend on live solver-cache timings.
    (tmp_path / "b").mkdir()
    manifest = json.loads((tmp_path / "a" / "manifest.json").read_text())
    phase = next(iter(manifest["phases"]))
    manifest["phases"][phase]["wall_s"] = max(
        0.1, manifest["phases"][phase]["wall_s"] * 100
    )
    (tmp_path / "b" / "manifest.json").write_text(json.dumps(manifest))
    (tmp_path / "b" / "trace.jsonl").write_text(
        (tmp_path / "a" / "trace.jsonl").read_text()
    )

    assert main(["obs", "report", str(tmp_path / "a"), str(tmp_path / "b"),
                 "--phase-tolerance", "1e9"]) == 0
    out = capsys.readouterr().out
    assert "phase triage: no span shifted" in out

    rc = main(["obs", "report", str(tmp_path / "a"), str(tmp_path / "b"),
               "--phase-tolerance", "0.5", "--gate-phases"])
    assert rc == 4
    out = capsys.readouterr().out
    assert "span(s) shifted" in out and phase in out
