"""Topology inference (the paper's negative result)."""

import numpy as np
import pytest

from repro.analysis.topology_inference import (
    infer_topology,
    metric_consistency,
)
from repro.bench.results import BandwidthMatrix
from repro.bench.stream import StreamBenchmark
from repro.errors import ModelError
from repro.topology.builders import magny_cours_4p
from repro.topology.distance import hop_matrix


def _matrix_from_hops(machine, base=30.0, per_hop=5.0):
    """A perfectly hop-consistent symmetric matrix."""
    hops = hop_matrix(machine)
    values = base - per_hop * hops.astype(float)
    return BandwidthMatrix(node_ids=machine.node_ids, values=values)


class TestMetricConsistency:
    def test_symmetric_matrix_consistent(self, variant_a):
        assert metric_consistency(_matrix_from_hops(variant_a))

    def test_reference_host_inconsistent(self, host, registry):
        matrix = StreamBenchmark(host, registry=registry, runs=5).matrix()
        assert not metric_consistency(matrix)


class TestInference:
    def test_clean_machine_identified(self, variant_a):
        report = infer_topology(_matrix_from_hops(variant_a))
        assert report.best.name == "magny-cours-4p-a"
        assert report.best.spearman_rho > 0.95
        assert report.conclusive()

    def test_each_variant_identifies_itself(self):
        for v in "abcd":
            machine = magny_cours_4p(v)
            report = infer_topology(_matrix_from_hops(machine))
            assert report.best.name == f"magny-cours-4p-{v}", v

    def test_reference_host_inconclusive(self, host, registry):
        matrix = StreamBenchmark(host, registry=registry, runs=5).matrix()
        report = infer_topology(matrix)
        assert not report.conclusive()

    def test_violations_counted(self, variant_a):
        hops = hop_matrix(variant_a)
        values = 30.0 - 5.0 * hops.astype(float)
        # Break one relation: make a 2-hop pair look faster than a 1-hop.
        far = np.argwhere(hops == 2)[0]
        values[far[0], far[1]] = 29.0
        report = infer_topology(
            BandwidthMatrix(node_ids=variant_a.node_ids, values=values)
        )
        score = next(s for s in report.scores if s.name == "magny-cours-4p-a")
        assert score.violations > 0

    def test_node_count_mismatch_rejected(self, small_machine):
        matrix = _matrix_from_hops(small_machine)
        with pytest.raises(ModelError):
            infer_topology(matrix)  # default candidates have 8 nodes

    def test_render(self, variant_a):
        text = infer_topology(_matrix_from_hops(variant_a)).render()
        assert "verdict" in text
        assert "CONCLUSIVE" in text
