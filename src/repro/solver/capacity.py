"""Capacity-map construction and machine fingerprinting.

The single place that knows how a :class:`~repro.topology.machine.Machine`
turns into flow-solver resources: every DRAM controller (DMA + PIO
directions, from :mod:`repro.memory.controller`) plus every directed
DMA-plane link.  The engines used to each hand-roll this merge; now they
ask the session, which builds it once per topology.

Fingerprints come from the canonical serialized form
(:func:`repro.topology.serialize.machine_to_dict`), so any edit made
through :mod:`repro.topology.modify` — drop a link, change a credit,
swap a controller — yields a new fingerprint and therefore a fresh
session: stale capacity or routing answers cannot survive a topology
change.  Explicit routing overrides installed via
``machine.routing.set_route`` are folded into the fingerprint as well.
"""

from __future__ import annotations

import hashlib
import json

from repro.memory.controller import controller_capacities
from repro.topology.machine import Machine
from repro.topology.serialize import machine_to_dict

__all__ = [
    "link_resource",
    "link_capacities",
    "build_capacities",
    "machine_fingerprint",
]

_FINGERPRINT_ATTR = "_solver_fingerprint"


def link_resource(src: int, dst: int) -> str:
    """Stable flow-resource name for a directed fabric link (DMA plane)."""
    return f"link-dma:{src}>{dst}"


def link_capacities(machine: Machine) -> dict[str, float]:
    """DMA capacities of every directed link, keyed by resource name."""
    return {
        link_resource(src, dst): link.dma_gbps
        for (src, dst), link in machine.links.items()
    }


def build_capacities(machine: Machine) -> dict[str, float]:
    """The full fabric capacity map: controllers plus directed links."""
    return {**controller_capacities(machine), **link_capacities(machine)}


def machine_fingerprint(machine: Machine) -> str:
    """Stable topology fingerprint of ``machine``.

    Computed from the canonical serialized description (plus any routing
    overrides) and cached on the machine object — machines are immutable
    after construction, and the what-if helpers in
    :mod:`repro.topology.modify` always return *new* machines, which get
    new fingerprints.
    """
    cached = getattr(machine, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    description = machine_to_dict(machine)
    overrides = getattr(machine.routing, "_overrides", None)
    if overrides:
        description["routing_overrides"] = sorted(
            (str(plane), src, dst, list(hops))
            for (plane, src, dst), hops in overrides.items()
        )
    blob = json.dumps(description, sort_keys=True, default=str)
    fingerprint = hashlib.sha1(blob.encode("utf-8")).hexdigest()
    try:
        setattr(machine, _FINGERPRINT_ATTR, fingerprint)
    except AttributeError:  # pragma: no cover - exotic machine subclasses
        pass
    return fingerprint
