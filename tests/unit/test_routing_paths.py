"""Path capacity and latency summaries."""

import pytest

from repro.interconnect.link import DirectedLink
from repro.interconnect.planes import PLANE_DMA
from repro.routing.paths import Path
from repro.units import NS


def _link(a, b, credit=1.0, pio=None, lat=10 * NS):
    return DirectedLink(src=a, dst=b, width_bits=16, gts=3.2,
                        dma_credit=credit, pio_cap_gbps=pio, pio_latency_s=lat)


class TestPath:
    def test_local_path(self):
        p = Path(plane=PLANE_DMA, hops=(3,), links=())
        assert p.is_local
        assert p.n_hops == 0
        assert p.dma_bottleneck_gbps() == float("inf")
        assert p.pio_bottleneck_gbps() == float("inf")
        assert p.latency_one_way_s() == 0.0

    def test_endpoints(self):
        p = Path(plane=PLANE_DMA, hops=(0, 1, 2),
                 links=(_link(0, 1), _link(1, 2)))
        assert p.src == 0
        assert p.dst == 2
        assert p.n_hops == 2
        assert not p.is_local

    def test_dma_bottleneck_is_min(self):
        p = Path(plane=PLANE_DMA, hops=(0, 1, 2),
                 links=(_link(0, 1, credit=1.0), _link(1, 2, credit=0.5)))
        assert p.dma_bottleneck_gbps() == pytest.approx(25.6)

    def test_pio_bottleneck_is_min(self):
        p = Path(plane=PLANE_DMA, hops=(0, 1, 2),
                 links=(_link(0, 1, pio=20.0), _link(1, 2, pio=14.5)))
        assert p.pio_bottleneck_gbps() == pytest.approx(14.5)

    def test_latency_sums(self):
        p = Path(plane=PLANE_DMA, hops=(0, 1, 2),
                 links=(_link(0, 1, lat=10 * NS), _link(1, 2, lat=15 * NS)))
        assert p.latency_one_way_s() == pytest.approx(25 * NS)

    def test_mismatched_links_rejected(self):
        with pytest.raises(AssertionError):
            Path(plane=PLANE_DMA, hops=(0, 1, 2),
                 links=(_link(0, 1), _link(2, 1)))
