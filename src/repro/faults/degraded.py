"""Degraded-mode flow simulation: reroute, back off, or fail — structurally.

:class:`~repro.flows.network.FlowNetwork` simulates against a *fixed*
capacity map and raises when a flow starves.  Under a
:class:`~repro.faults.plan.FaultPlan` neither holds: capacities change
at fault boundaries, and a starved flow is an expected state that the
runner must handle gracefully:

1. **re-route** — if a :func:`machine_rerouter` is installed and a path
   avoiding the dead resources survives on the faulted topology, the
   flow continues on the new resource set (outcome ``"rerouted"``);
2. **retry** — otherwise the flow parks and retries with seeded
   exponential backoff (the fault may recover); a flow that eventually
   completes this way reports ``"recovered"``;
3. **fail** — once the retry budget is exhausted the flow completes
   with a structured :class:`DegradedOutcome` of status ``"failed"``
   (partial bytes, a human-readable reason) instead of raising, so
   multi-transfer shuffles report partial results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.errors import RouteLostError, RoutingError, SimulationError
from repro.faults.plan import FaultedMachine, FaultPlan
from repro.flows.flow import Flow
from repro.interconnect.planes import PLANE_DMA
from repro.memory.controller import MemoryController
from repro.obs import recorder as _obs
from repro.retrying import RetryPolicy
from repro.solver.capacity import link_resource
from repro.solver.incremental import AllocationCache
from repro.units import gbps, gbps_to_bytes_per_s

__all__ = [
    "RetryPolicy",
    "DegradedOutcome",
    "DegradedFlowRunner",
    "reroute_resources",
    "machine_rerouter",
]

_TIME_EPS = 1e-15
_DEAD_EPS = 1e-12

#: A rerouter maps (flow name, dead resources, time) to a surviving
#: resource set, or ``None`` when no alternative exists.
Rerouter = Callable[[str, tuple[str, ...], float], "tuple[str, ...] | None"]


@dataclass(frozen=True)
class DegradedOutcome:
    """Result of one flow under fault injection.

    ``status`` is one of ``"ok"`` (never disturbed), ``"rerouted"``
    (continued on an alternative route), ``"recovered"`` (waited out a
    fault via retries) or ``"failed"`` (retry budget exhausted;
    ``bytes_moved`` holds the partial progress and ``reason`` says why).
    """

    name: str
    bytes_moved: float
    start_s: float
    finish_s: float
    status: str = "ok"
    reason: str | None = None
    retries: int = 0
    reroutes: int = 0

    @property
    def completed(self) -> bool:
        """Whether the transfer moved all of its bytes."""
        return self.status != "failed"

    @property
    def duration_s(self) -> float:
        """Wall time from start to completion (or abandonment)."""
        return self.finish_s - self.start_s

    @property
    def avg_gbps(self) -> float:
        """Average bandwidth over the flow's lifetime (0 for instant fails)."""
        if self.duration_s <= 0:
            return 0.0
        return gbps(self.bytes_moved, self.duration_s)


class _FlowState:
    """Mutable bookkeeping for one flow during a degraded run."""

    __slots__ = ("flow", "remaining", "retries", "reroutes", "wake_s")

    def __init__(self, flow: Flow) -> None:
        self.flow = flow
        self.remaining = float(flow.size_bytes)  # type: ignore[arg-type]
        self.retries = 0
        self.reroutes = 0
        self.wake_s = 0.0


class DegradedFlowRunner:
    """Time-domain flow simulation under a :class:`FaultPlan`.

    Parameters
    ----------
    capacities:
        The *healthy* capacity map; fault derating is applied per time
        slice, so faulted capacities never exceed these.
    plan:
        The fault schedule.  An empty plan reproduces
        :meth:`FlowNetwork.simulate` outcomes exactly (all ``"ok"``).
    rng:
        Seeded generator for backoff jitter; ``None`` disables jitter
        (still deterministic).
    retry:
        The backoff policy for blocked flows.
    rerouter:
        Optional :data:`Rerouter`; see :func:`machine_rerouter`.
    allocator:
        Optional shared allocation cache (a session's, usually).
    stats:
        Optional :class:`~repro.solver.stats.SolverStats` event counter.
    """

    def __init__(
        self,
        capacities: Mapping[str, float],
        plan: FaultPlan | None = None,
        rng: np.random.Generator | None = None,
        retry: RetryPolicy | None = None,
        rerouter: Rerouter | None = None,
        allocator: AllocationCache | None = None,
        stats=None,
    ) -> None:
        self.capacities = dict(capacities)
        self.plan = plan if plan is not None else FaultPlan()
        self.retry = retry if retry is not None else RetryPolicy()
        self.rerouter = rerouter
        self._rng = rng
        self._alloc = allocator if allocator is not None else AllocationCache()
        self._stats = stats

    # --- helpers ----------------------------------------------------------
    def _dead_resources(
        self, flow: Flow, caps: Mapping[str, float]
    ) -> tuple[str, ...]:
        return tuple(r for r in flow.resources if caps.get(r, 0.0) <= _DEAD_EPS)

    def _fail(
        self, state: _FlowState, now: float, reason: str
    ) -> DegradedOutcome:
        flow = state.flow
        return DegradedOutcome(
            name=flow.name,
            bytes_moved=float(flow.size_bytes) - state.remaining,  # type: ignore[arg-type]
            start_s=flow.start_s,
            finish_s=now,
            status="failed",
            reason=reason,
            retries=state.retries,
            reroutes=state.reroutes,
        )

    def _handle_blocked(
        self,
        state: _FlowState,
        dead: tuple[str, ...],
        caps: Mapping[str, float],
        now: float,
        waiting: dict[str, _FlowState],
        outcomes: dict[str, DegradedOutcome],
    ) -> bool:
        """Resolve one blocked flow; returns True if it stays active."""
        if self.rerouter is not None:
            alternative = self.rerouter(state.flow.name, dead, now)
            if alternative is not None and not any(
                caps.get(r, 0.0) <= _DEAD_EPS for r in alternative
            ):
                state.flow = replace(state.flow, resources=tuple(alternative))
                state.reroutes += 1
                _obs.count("faults.reroutes")
                return True
        if state.retries >= self.retry.max_retries:
            outcomes[state.flow.name] = self._fail(
                state,
                now,
                f"resources {sorted(dead)} unavailable after "
                f"{state.retries} retries",
            )
            _obs.count("faults.flows_failed")
            return False
        delay = self.retry.delay_s(state.retries, self._rng)
        state.retries += 1
        state.wake_s = now + delay
        waiting[state.flow.name] = state
        _obs.count("faults.retries")
        return False

    # --- simulation -------------------------------------------------------
    def simulate(self, flows: Iterable[Flow]) -> dict[str, DegradedOutcome]:
        """Run finite flows to completion or structured failure."""
        with _obs.span(
            "faults.degraded_run", faults=len(self.plan)
        ):
            _obs.count("faults.injected", len(self.plan))
            return self._simulate(flows)

    def _simulate(self, flows: Iterable[Flow]) -> dict[str, DegradedOutcome]:
        pending = sorted(flows, key=lambda f: (f.start_s, f.name))
        for f in pending:
            if f.size_bytes is None:
                raise SimulationError(
                    f"flow {f.name!r} has no size; degraded runs are time-domain"
                )
        states = {f.name: _FlowState(f) for f in pending}
        if len(states) != len(pending):
            raise SimulationError("duplicate flow names in degraded run")
        active: dict[str, _FlowState] = {}
        waiting: dict[str, _FlowState] = {}
        outcomes: dict[str, DegradedOutcome] = {}
        now = pending[0].start_s if pending else 0.0

        guard = 0
        while pending or active or waiting:
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - safety valve
                raise SimulationError("degraded flow simulation failed to converge")
            if self._stats is not None:
                self._stats.events += 1

            while pending and pending[0].start_s <= now + _TIME_EPS:
                f = pending.pop(0)
                active[f.name] = states[f.name]
            for name in [n for n, s in waiting.items() if s.wake_s <= now + _TIME_EPS]:
                active[name] = waiting.pop(name)

            caps = self.plan.scaled_capacities(self.capacities, now)
            # Blocked flows re-route, park for a retry, or fail.
            for name in list(active):
                state = active[name]
                dead = self._dead_resources(state.flow, caps)
                if dead and not self._handle_blocked(
                    state, dead, caps, now, waiting, outcomes
                ):
                    del active[name]

            if not active:
                # Jump to the next thing that can change the picture.
                candidates = []
                if pending:
                    candidates.append(pending[0].start_s)
                if waiting:
                    candidates.append(min(s.wake_s for s in waiting.values()))
                if not candidates:
                    break
                now = max(now, min(candidates))
                continue

            current = self._alloc.rates(
                [s.flow for s in active.values()], caps
            )
            horizon = pending[0].start_s - now if pending else math.inf
            if waiting:
                horizon = min(
                    horizon, min(s.wake_s for s in waiting.values()) - now
                )
            boundary = self.plan.next_boundary(now)
            if boundary is not None:
                horizon = min(horizon, boundary - now)
            for name, state in active.items():
                rate_bps = gbps_to_bytes_per_s(current[name])
                if rate_bps <= 0:
                    raise SimulationError(
                        f"flow {name!r} starved on live resources "
                        f"{state.flow.resources}"
                    )
                horizon = min(horizon, state.remaining / rate_bps)
            if horizon is math.inf or horizon < 0:
                raise SimulationError("no progress horizon in degraded simulation")

            for name, state in active.items():
                state.remaining -= gbps_to_bytes_per_s(current[name]) * horizon
            now += horizon
            for name in list(active):
                state = active[name]
                size = float(state.flow.size_bytes)  # type: ignore[arg-type]
                if state.remaining <= max(1.0, 1e-9 * size):
                    del active[name]
                    if state.reroutes > 0:
                        status = "rerouted"
                    elif state.retries > 0:
                        status = "recovered"
                    else:
                        status = "ok"
                    outcomes[name] = DegradedOutcome(
                        name=name,
                        bytes_moved=size,
                        start_s=state.flow.start_s,
                        finish_s=now,
                        status=status,
                        retries=state.retries,
                        reroutes=state.reroutes,
                    )
        return outcomes


def reroute_resources(
    machine, src: int, dst: int
) -> tuple[str, ...]:
    """The DMA-plane resource set for a ``src -> dst`` bulk transfer.

    On a :class:`~repro.faults.plan.FaultedMachine` this is the surviving
    route's resource set.

    Raises
    ------
    RouteLostError
        If no route from ``src`` to ``dst`` survives on ``machine``.
    """
    resources = [MemoryController(src, 0, 0).dma_resource]
    dst_ctrl = MemoryController(dst, 0, 0).dma_resource
    if dst_ctrl != resources[0]:
        resources.append(dst_ctrl)
    if src != dst:
        try:
            path = machine.path(PLANE_DMA, src, dst)
        except RoutingError as exc:
            raise RouteLostError(
                f"no DMA route from node {src} to node {dst} on "
                f"{machine.name!r}: {exc}"
            ) from exc
        for link in path.links:
            resources.append(link_resource(*link.ends))
    return tuple(resources)


def machine_rerouter(
    machine, plan: FaultPlan, endpoints: Mapping[str, tuple[int, int]]
) -> Rerouter:
    """A :data:`Rerouter` that re-routes DMA flows on the faulted topology.

    ``endpoints`` maps flow names to their ``(src, dst)`` node pair.
    Faulted machine views are cached per active-topology-fault set, so a
    plan with few boundaries costs few rebuilds.
    """
    views: dict[tuple[str, ...], FaultedMachine] = {}

    def reroute(
        name: str, dead: tuple[str, ...], t: float
    ) -> tuple[str, ...] | None:
        pair = endpoints.get(name)
        if pair is None:
            return None
        faults = plan.topology_faults_at(t)
        key = tuple(f.describe() for f in faults)
        view = views.get(key)
        if view is None:
            view = FaultedMachine(machine, faults)
            views[key] = view
        try:
            return reroute_resources(view, *pair)
        except RouteLostError:
            return None

    return reroute
