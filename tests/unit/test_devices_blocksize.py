"""Block-size amortisation model."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.devices.response import EngineProfile, ResponseCurve
from repro.errors import DeviceError
from repro.rng import RngRegistry
from repro.units import KiB, MiB


def _profile(overhead=4096):
    return EngineProfile(
        name="x",
        curve=ResponseCurve(cap_gbps=20.0, path_ref_gbps=50.0, beta=0.1, gamma=1.0),
        per_io_overhead_bytes=overhead,
    )


class TestBlocksizeFactor:
    def test_reference_is_identity(self):
        assert _profile().blocksize_factor(128 * KiB) == pytest.approx(1.0)

    def test_monotone_in_blocksize(self):
        p = _profile()
        factors = [p.blocksize_factor(bs) for bs in (4 * KiB, 64 * KiB,
                                                     128 * KiB, MiB)]
        assert factors == sorted(factors)

    def test_small_blocks_pay(self):
        assert _profile().blocksize_factor(4 * KiB) < 0.55

    def test_large_blocks_gain_little(self):
        assert _profile().blocksize_factor(MiB) < 1.05

    def test_zero_overhead_is_flat(self):
        p = _profile(overhead=0)
        assert p.blocksize_factor(4 * KiB) == 1.0

    def test_invalid_blocksize(self):
        with pytest.raises(DeviceError):
            _profile().blocksize_factor(0)


class TestEndToEnd:
    def test_table_values_unchanged_at_reference_blocksize(self, host):
        # Calibration holds exactly at Table III's 128 KiB.
        runner = FioRunner(host, RngRegistry())
        job = FioJob(name="bs-ref", engine="rdma", rw="write", numjobs=4,
                     cpunodebind=5, blocksize=128 * KiB)
        assert runner.run(job).aggregate_gbps == pytest.approx(23.2, rel=0.02)

    def test_blocksize_sweep_monotone(self, host):
        runner = FioRunner(host, RngRegistry())
        values = []
        for bs in (8 * KiB, 32 * KiB, 128 * KiB, MiB):
            job = FioJob(name=f"bs-{bs}", engine="libaio", rw="read",
                         numjobs=4, cpunodebind=6, blocksize=bs, iodepth=16)
            values.append(runner.run(job).aggregate_gbps)
        # Allow noise at the top end; the small-block penalty must show.
        # 8 KiB amortises to ~0.69 of the 128 KiB reference.
        assert values[0] < 0.75 * values[2]
        assert values[1] < values[2]
        assert values[3] == pytest.approx(values[2], rel=0.1)
