#!/usr/bin/env python
"""Benchmark the service's tiered answer path and pin its contract.

Measures, on the reference host, through the *production* dispatch
path (``PlacementService.handle_line``):

* ``service_solve_baseline`` — the *same* soak trace through a service
  with no warm state: every request is answered from a cold start
  (sessions reset, fresh backend), so every solver-backed request pays
  one genuine Algorithm 1 characterization — the solve-every-request
  world this PR retires;
* ``service_tier1_predict`` — warmed ``predict_eq1`` answered by the
  analytic fit (mean + p99 in ``extra_info``);
* ``service_tier2_advise`` — warmed ``advise`` answered from the
  memoized class snapshot;
* ``service_soak_trace`` — per-request latency sustained over the
  healthy chaos-soak traffic mix (requests/sec in ``extra_info``).

Hard acceptance asserts (the ISSUE 8 bar), checked on every run:

* tiered throughput on the soak trace >= 50x the solve-every-request
  baseline;
* tier-1 p99 latency < 1 ms;
* analytic-tier predictions within the documented 5% error bound of
  the exact tier-3 Eq. 1 answers on the fig10/table4 targets
  (reference host, node 7, write and read).

Writes a pytest-benchmark-shaped JSON (``benchmarks[].stats``) so
``scripts/bench_gate.py`` can gate regressions; ``bench_smoke.sh``
wires it in as the ``service`` suite.

Usage::

    PYTHONPATH=src python scripts/bench_service.py [OUTPUT.json]
"""

from __future__ import annotations

import json
import math
import platform
import statistics
import sys
import time

from repro.rng import RngRegistry
from repro.service import AdvisoryBackend, PlacementService
from repro.service.soak import LogicalClock, build_traffic
from repro.solver.session import reset_sessions
from repro.topology.builders import reference_host

RUNS = 25  # Algorithm 1 copies per probe: the service default
TARGET = 7  # the device node — the fig10/table4 target
ERR_BOUND = 0.05  # the documented tier-1 error bound (docs/service.md)


def _request(req_id, method, params):
    return json.dumps({
        "jsonrpc": "2.0", "id": req_id, "method": method, "params": params,
    }, sort_keys=True, separators=(",", ":"))


def _stats(times: list[float]) -> dict:
    return {
        "mean": statistics.fmean(times),
        "min": min(times),
        "max": max(times),
        "stddev": statistics.pstdev(times) if len(times) > 1 else 0.0,
        "rounds": len(times),
    }


def _p99(times: list[float]) -> float:
    ordered = sorted(times)
    return ordered[min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)]


def bench_solve_baseline(machine, traffic: list[str]) -> list[float]:
    """The soak trace against a cold service per request — the old world.

    Between requests every warm artefact is discarded (process-wide
    solver sessions reset, fresh backend and breaker), so each
    solver-backed request pays one genuine cold characterization and
    each ``plan`` re-scores the attachment base from scratch.  Cheap
    meta/error requests stay cheap — the mix is identical to the tiered
    measurement, so the ratio is apples-to-apples.
    """
    times = []
    for line in traffic:
        reset_sessions()
        backend = AdvisoryBackend(machine, registry=RngRegistry(), runs=RUNS)
        service = PlacementService(backend, clock=LogicalClock())
        t0 = time.perf_counter()
        service.handle_line(line)
        times.append(time.perf_counter() - t0)
    reset_sessions()
    return times


def bench_handle_line(service, line: str, rounds: int) -> list[float]:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        response = service.handle_line(line)
        times.append(time.perf_counter() - t0)
        assert '"error"' not in response.split('"result"')[0], response
    return times


def bench_soak_trace(service, traffic: list[str], passes: int = 3) -> list[float]:
    """The same soak traffic mix through the warmed tiered service.

    Runs the full trace ``passes`` times and keeps the fastest pass —
    the sustained steady state, insulated from one-off scheduler noise
    (the cold baseline needs no such care: its cost is real work, three
    orders of magnitude above the jitter).
    """
    best: list[float] | None = None
    for _ in range(passes):
        times = []
        for line in traffic:
            t0 = time.perf_counter()
            service.handle_line(line)
            times.append(time.perf_counter() - t0)
        if best is None or sum(times) < sum(best):
            best = times
    return best


def check_analytic_accuracy(machine) -> dict:
    """Tier-1 vs tier-3 Eq. 1 on the fig10/table4 targets, per mode."""
    report = {}
    for mode in ("write", "read"):
        backend = AdvisoryBackend(
            machine, registry=RngRegistry(), runs=RUNS, clock=LogicalClock()
        )
        exact = backend.predict_eq1(TARGET, mode, [0, 1, 2, 3])
        assert exact["tier"] == 3
        worst = 0.0
        nodes = list(machine.node_ids)
        mixes = [[n] for n in nodes] + [nodes, [0, 1, 2, 3], [4, 5, 6, 7]]
        for streams in mixes:
            fast = backend.predict_eq1(TARGET, mode, streams)
            assert fast["tier"] == 1, fast
            model = backend.model(TARGET, mode)
            avgs = {c.rank: c.avg for c in model.classes}
            ranks = [model.class_of(n).rank for n in streams]
            truth = sum(avgs[r] for r in ranks) / len(ranks)
            worst = max(worst, abs(fast["predicted_gbps"] - truth) / truth)
        fit_bound = backend.tiers.entries[(TARGET, mode)].fit.eq1_rel_err_bound
        if worst > ERR_BOUND or fit_bound > ERR_BOUND:
            raise SystemExit(
                f"FAIL: analytic tier error {worst:.4f} (fit bound "
                f"{fit_bound:.4f}) exceeds the documented {ERR_BOUND} "
                f"bound for {mode}"
            )
        report[mode] = {
            "max_rel_err": round(worst, 6),
            "fit_rel_err_bound": round(fit_bound, 6),
        }
    return report


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_service.json"
    machine = reference_host()

    traffic = build_traffic(RngRegistry(42), machine, TARGET, 500)
    solve_times = bench_solve_baseline(machine, traffic)
    solve_mean = statistics.fmean(solve_times)
    baseline_rps = len(solve_times) / sum(solve_times)

    backend = AdvisoryBackend(machine, registry=RngRegistry(), runs=RUNS)
    service = PlacementService(backend, clock=LogicalClock())
    backend.warm((TARGET,))

    predict_line = _request(1, "predict_eq1", {
        "target": TARGET, "mode": "read", "streams": [0, 1, 2, 3],
    })
    advise_line = _request(2, "advise", {"target": TARGET, "tasks": 8})
    bench_handle_line(service, predict_line, 200)  # warm the dispatch path
    tier1_times = bench_handle_line(service, predict_line, 2000)
    tier2_times = bench_handle_line(service, advise_line, 2000)
    trace_times = bench_soak_trace(service, traffic)
    trace_rps = len(trace_times) / sum(trace_times)
    tier1_p99 = _p99(tier1_times)

    accuracy = check_analytic_accuracy(machine)

    speedup = trace_rps / baseline_rps
    if speedup < 50.0:
        raise SystemExit(
            f"FAIL: tiered path sustains only {speedup:.1f}x the "
            f"solve-every-request baseline (need >= 50x)"
        )
    if tier1_p99 >= 1e-3:
        raise SystemExit(
            f"FAIL: tier-1 p99 {tier1_p99 * 1e6:.0f} us >= 1 ms"
        )

    payload = {
        "benchmarks": [
            {"name": "service_solve_baseline", "stats": _stats(solve_times)},
            {"name": "service_tier1_predict", "stats": _stats(tier1_times)},
            {"name": "service_tier2_advise", "stats": _stats(tier2_times)},
            {"name": "service_soak_trace", "stats": _stats(trace_times)},
        ],
        "extra_info": {
            "baseline_rps": round(baseline_rps, 2),
            "soak_trace_rps": round(trace_rps, 2),
            "speedup_vs_solve_every_request": round(speedup, 1),
            "tier1_p99_s": tier1_p99,
            "tier2_p99_s": _p99(tier2_times),
            "analytic_accuracy": accuracy,
            "documented_err_bound": ERR_BOUND,
            "runs_per_probe": RUNS,
            "target": TARGET,
        },
        "machine_info": {
            "machine": machine.name,
            "python_version": platform.python_version(),
            "system": platform.system(),
        },
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"service bench -> {out_path}")
    print(f"  solve-every-request : {solve_mean * 1e3:8.2f} ms/req "
          f"({baseline_rps:8.1f} req/s on the trace)")
    print(f"  tier-1 predict      : mean {statistics.fmean(tier1_times) * 1e6:7.1f} us, "
          f"p99 {tier1_p99 * 1e6:7.1f} us")
    print(f"  tier-2 advise       : mean {statistics.fmean(tier2_times) * 1e6:7.1f} us, "
          f"p99 {_p99(tier2_times) * 1e6:7.1f} us")
    print(f"  soak trace          : {trace_rps:8.1f} req/s "
          f"({speedup:.0f}x the solve-every-request baseline)")
    for mode, acc in accuracy.items():
        print(f"  analytic err ({mode:5s}): max {acc['max_rel_err']:.4f}, "
              f"fit bound {acc['fit_rel_err_bound']:.4f} "
              f"(documented <= {ERR_BOUND})")
    print("OK: >= 50x throughput, tier-1 p99 < 1 ms, analytic within bound")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
