"""IOPerformanceModel and ModelTable."""

import pytest

from repro.core.classify import classify_nodes
from repro.core.model import IOPerformanceModel, ModelTable
from repro.errors import ModelError


@pytest.fixture()
def write_model(host):
    values = {i: host.dma_path_gbps(i, 7) for i in host.node_ids}
    classes = classify_nodes(values, host, 7)
    return IOPerformanceModel(
        machine_name=host.name, target_node=7, mode="write",
        values=values, classes=classes, threads=4, runs=100,
    )


class TestModel:
    def test_class_lookup(self, write_model):
        assert write_model.class_of(6).rank == 1
        assert write_model.class_of(0).rank == 2
        assert write_model.class_of(2).rank == 3

    def test_class_by_rank(self, write_model):
        assert sorted(write_model.class_by_rank(3).node_ids) == [2, 3]
        with pytest.raises(ModelError):
            write_model.class_by_rank(9)

    def test_unknown_node_rejected(self, write_model):
        with pytest.raises(ModelError):
            write_model.class_of(42)

    def test_representatives_one_per_class(self, write_model):
        reps = write_model.representative_nodes()
        assert len(reps) == write_model.n_classes
        ranks = [write_model.class_of(r).rank for r in reps]
        assert ranks == sorted(set(ranks))

    def test_cost_reduction(self, write_model):
        # 3 classes over 8 nodes.
        assert write_model.probe_cost_reduction() == pytest.approx(1 - 3 / 8)

    def test_render_layout(self, write_model):
        text = write_model.render()
        assert "Class 1" in text and "Range" in text and "Avg" in text

    def test_invalid_mode_rejected(self, host, write_model):
        with pytest.raises(ModelError):
            IOPerformanceModel(
                machine_name=host.name, target_node=7, mode="sideways",
                values=write_model.values, classes=write_model.classes,
                threads=4, runs=100,
            )

    def test_partition_mismatch_rejected(self, host, write_model):
        partial = dict(write_model.values)
        partial[99] = 10.0
        with pytest.raises(ModelError):
            IOPerformanceModel(
                machine_name=host.name, target_node=7, mode="write",
                values=partial, classes=write_model.classes,
                threads=4, runs=100,
            )


class TestModelTable:
    def test_from_measurements(self, write_model):
        rdma = {n: 23.2 if write_model.class_of(n).rank < 3 else 17.1
                for n in write_model.values}
        table = ModelTable.from_measurements(write_model, {"RDMA_WRITE": rdma})
        row = table.row("RDMA_WRITE")
        assert row.per_class_avg[0] == pytest.approx(23.2)
        assert row.per_class_avg[2] == pytest.approx(17.1)

    def test_memcpy_row_always_first(self, write_model):
        table = ModelTable.from_measurements(write_model, {})
        assert table.rows[0].operation == "Proposed memcpy"

    def test_missing_nodes_rejected(self, write_model):
        with pytest.raises(ModelError):
            ModelTable.from_measurements(write_model, {"op": {0: 1.0}})

    def test_unknown_row_rejected(self, write_model):
        table = ModelTable.from_measurements(write_model, {})
        with pytest.raises(ModelError):
            table.row("TCP sender")

    def test_render_contains_operations(self, write_model):
        rdma = {n: 20.0 for n in write_model.values}
        table = ModelTable.from_measurements(write_model, {"RDMA_WRITE": rdma})
        text = table.render()
        assert "Proposed memcpy" in text
        assert "RDMA_WRITE" in text
        assert "device write" in text
