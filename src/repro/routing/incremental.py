"""Incremental re-routing under a fault delta.

A fault changes the link map in one of two directions per link:

* **worsened** — the link disappeared (:class:`~repro.faults.events.
  LinkFail`) or its plane weight got strictly worse (a
  :class:`~repro.faults.events.LinkDegrade` shrinks the bottleneck
  and/or raises the latency);
* **improved** — the link (re)appeared or its weight got strictly
  better (the restore direction of a fault-then-restore round trip).

Given the previously selected all-pairs routes, most sources provably
cannot change under such a delta, so only the rest re-run the
BFS + Pareto-DP of :func:`~repro.routing.batch.routes_from_source`:

* a **worsened or removed** link can only shrink the candidate set or
  worsen candidates that traverse it.  If none of a source's *selected*
  routes traverses the link, every selected route survives with an
  unchanged score — hop distances cannot decrease when links only
  vanish or worsen, the surviving winner is still a minimal-hop route,
  and every other candidate either kept its old score (and already
  lost) or got worse.  So the source's whole row is carried over
  verbatim.  The same argument holds *per pair*: a source whose crossed
  pairs all became **unreachable** (the fault partitioned them away)
  only drops those pairs — one BFS confirms the partition and the
  Pareto-DP is skipped entirely.  That is the dominant chaos case
  (a :class:`~repro.faults.events.LinkFail` isolating the victim node),
  which is why re-routing around a partition costs BFS probes, not a
  rebuild.
* an **improved or added** link ``a -> b`` can only enter routes of
  sources that can reach ``a`` at all.  A reverse BFS from the heads of
  all improved links over the union (old ∪ new) adjacency marks every
  such source; the rest are carried over.

Recomputed sources run the *same* per-source DP as
:func:`~repro.routing.batch.batch_routes`, so the merged result is
bit-identical to a from-scratch rebuild — the property suite asserts
exactly that across random topologies × random fault sequences,
including fault-then-restore round trips.

The :class:`RerouteStats` returned alongside the routes feeds the
``routing.rerouted_pairs`` / ``routing.reroute_skipped_pairs`` counters
and names the **touched nodes** — endpoints of pairs whose route
changed *or* whose route traverses a re-weighted link (a derate keeps
the hop sequence but not the bandwidth).  The self-healing control
plane quarantines exactly the tier entries of those nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.interconnect.planes import Plane, validate_plane
from repro.obs import recorder as _obs
from repro.routing.batch import bfs_layers, plane_weights, routes_from_source

__all__ = [
    "LinkDelta",
    "RerouteStats",
    "link_delta",
    "route_usage",
    "incremental_routes",
]

Routes = Mapping[tuple[int, int], tuple[int, ...]]
#: link ends -> pairs whose selected route traverses that link.
Usage = Mapping[tuple[int, int], Sequence[tuple[int, int]]]


@dataclass(frozen=True)
class LinkDelta:
    """One plane's link changes between two link maps."""

    #: Links removed, or with a strictly worse ``(bottleneck, latency)``.
    worsened: tuple[tuple[int, int], ...]
    #: Links added, or with a strictly better weight.  A mixed change
    #: (bottleneck down, latency down) appears in both tuples.
    improved: tuple[tuple[int, int], ...]

    def __bool__(self) -> bool:
        return bool(self.worsened or self.improved)


@dataclass(frozen=True)
class RerouteStats:
    """What one incremental re-route did, for counters and quarantine."""

    plane: Plane
    #: Sources the new link map routes for (``len(sorted(adj))``).
    sources_total: int
    #: Sources that could not be carried over verbatim.
    sources_rerouted: int
    #: Pairs recomputed by the per-source Pareto-DP.
    pairs_rerouted: int
    #: Pairs carried over verbatim from the old routes.
    pairs_kept: int
    #: Pairs whose answer changed: different hops, dropped, added, or
    #: same hops over a re-weighted link.
    pairs_changed: int
    #: Sorted endpoints of the changed pairs — the nodes whose class
    #: models the fault can have invalidated.
    touched_nodes: tuple[int, ...]


def link_delta(
    old_links: Mapping[tuple[int, int], object],
    new_links: Mapping[tuple[int, int], object],
    plane: Plane,
) -> LinkDelta:
    """Classify every link change between two maps for one plane."""
    validate_plane(plane)
    old_w = plane_weights(old_links, plane)
    new_w = plane_weights(new_links, plane)
    worsened: list[tuple[int, int]] = []
    improved: list[tuple[int, int]] = []
    for ends, (b0, l0) in old_w.items():
        weight = new_w.get(ends)
        if weight is None:
            worsened.append(ends)
            continue
        b1, l1 = weight
        if b1 == b0 and l1 == l0:
            continue
        if b1 <= b0 and l1 >= l0:
            worsened.append(ends)
        elif b1 >= b0 and l1 <= l0:
            improved.append(ends)
        else:  # mixed: worse on one axis, better on the other
            worsened.append(ends)
            improved.append(ends)
    for ends in new_w:
        if ends not in old_w:
            improved.append(ends)
    return LinkDelta(worsened=tuple(worsened), improved=tuple(improved))


def route_usage(routes: Routes) -> dict[tuple[int, int], list[tuple[int, int]]]:
    """Invert selected routes into ``link ends -> pairs crossing it``.

    One pass over every route's hop pairs; built lazily (and cached by
    :meth:`~repro.routing.table.RoutingTable.derive`) so a populated
    table pays for the index only when the first fault delta arrives,
    and every later delta is a handful of dict lookups.
    """
    usage: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for pair, hops in routes.items():
        for ends in zip(hops, hops[1:]):
            usage.setdefault(ends, []).append(pair)
    return usage


def _components(adj: Mapping[int, Sequence[int]]) -> dict[int, int] | None:
    """Connected-component ids, or ``None`` if adjacency is asymmetric.

    On a symmetric adjacency (every cable contributes both directions —
    what every builder produces) directed reachability collapses to
    component membership, so one O(E) sweep answers every "is this pair
    partitioned?" question the re-router asks, instead of one BFS per
    affected source.
    """
    sets = {node: set(nbrs) for node, nbrs in adj.items()}
    for node, nbrs in sets.items():
        for there in nbrs:
            if node not in sets.get(there, ()):
                return None
    comp: dict[int, int] = {}
    cid = 0
    for start in adj:
        if start in comp:
            continue
        comp[start] = cid
        frontier = [start]
        while frontier:
            nxt = []
            for node in frontier:
                for there in adj[node]:
                    if there not in comp:
                        comp[there] = cid
                        nxt.append(there)
            frontier = nxt
        cid += 1
    return comp


def _reaches_heads(
    heads: set[int],
    old_links: Mapping[tuple[int, int], object],
    new_links: Mapping[tuple[int, int], object],
) -> set[int]:
    """Nodes with a directed path to any head in the old ∪ new graph."""
    reverse: dict[int, list[int]] = {}
    for src, dst in set(old_links) | set(new_links):
        reverse.setdefault(dst, []).append(src)
    seen = set(heads)
    frontier = list(heads)
    while frontier:
        nxt = []
        for node in frontier:
            for prev in reverse.get(node, ()):
                if prev not in seen:
                    seen.add(prev)
                    nxt.append(prev)
        frontier = nxt
    return seen


def incremental_routes(
    old_links: Mapping[tuple[int, int], object],
    new_links: Mapping[tuple[int, int], object],
    plane: Plane,
    old_routes: Routes,
    new_adj: Mapping[int, Sequence[int]] | None = None,
    usage: Usage | None = None,
) -> tuple[dict[tuple[int, int], tuple[int, ...]], RerouteStats]:
    """All-pairs routes for ``new_links``, reusing ``old_routes``.

    ``old_routes`` must be the full non-strict
    :func:`~repro.routing.batch.batch_routes` result for ``old_links``
    over every node with a link (the state a populated
    :class:`~repro.routing.table.RoutingTable` plane holds);
    ``usage`` is its :func:`route_usage` index (rebuilt here when not
    supplied).  The returned dict is bit-identical to
    ``batch_routes(new_links, plane, strict=False)``; unreachable pairs
    are omitted, so lookups on them keep raising
    :class:`~repro.errors.RoutingError` lazily, as before.
    """
    validate_plane(plane)
    if new_adj is None:
        from repro.routing.table import _adjacency

        new_adj = _adjacency(new_links)
    delta = link_delta(old_links, new_links, plane)

    # Pairs whose selected route crosses a worsened link, per source.
    crossed: dict[int, set[int]] = {}
    worse = set(delta.worsened)
    if delta and usage is None:
        usage = route_usage(old_routes)
    for ends in worse:
        for src, dst in usage.get(ends, ()):
            crossed.setdefault(src, set()).add(dst)
    # Pairs whose *unchanged* hop sequence still runs over a re-weighted
    # link (a derate keeps the route but not the bandwidth) — they count
    # as touched for quarantine even though the answer's hops match.
    delta_pairs: set[tuple[int, int]] = set()
    if delta:
        for ends in worse | set(delta.improved):
            delta_pairs.update(usage.get(ends, ()))
    # Sources an improved/added link could newly serve must re-run the
    # full DP — a better candidate may beat a surviving winner.
    full_dp: set[int] = set()
    if delta.improved:
        heads = {ends[0] for ends in delta.improved}
        full_dp = _reaches_heads(heads, old_links, new_links)
    affected = full_dp | set(crossed)

    node_list = tuple(sorted(new_adj))
    touched: set[tuple[int, int]] = set()
    rerouted = 0
    kept = 0

    # Classify each affected source before touching any routes.  A
    # source whose crossed pairs were all partitioned away only *drops*
    # those pairs — the rest of its row survives verbatim by the same
    # winner-survival argument, so no DP runs for it.  On a symmetric
    # adjacency one component sweep decides that for every source at
    # once; asymmetric maps (never produced by the builders) fall back
    # to a per-source BFS probe.
    gone: set[int] = set()        # lost their last link: whole row drops
    drop_only: dict[int, set[int]] = {}
    defer: set[int] = set()       # need a BFS probe and possibly the DP
    comp: dict[int, int] | None = None
    comp_built = False
    for src in affected:
        if src not in new_adj:
            gone.add(src)
            continue
        if src in full_dp:
            defer.add(src)
            continue
        if not comp_built:
            comp = _components(new_adj)
            comp_built = True
        if comp is None:
            defer.add(src)  # probe reachability per source below
            continue
        cid = comp[src]
        dsts = crossed[src]
        if all(comp.get(dst, -1) != cid for dst in dsts):
            drop_only[src] = dsts
        else:
            defer.add(src)

    result: dict[tuple[int, int], tuple[int, ...]]
    by_src: dict[int, list[int]] = {}
    if not affected:
        result = dict(old_routes)
        kept = len(result)
    elif not defer:
        # Pure drop delta (the dominant chaos case: a LinkFail
        # isolating a node).  Clone the whole route map at C speed and
        # delete exactly the partitioned pairs — zero BFS, zero DP.
        result = dict(old_routes)
        for src, dsts in drop_only.items():
            for dst in dsts:
                if result.pop((src, dst), None) is not None:
                    touched.add((src, dst))
        for src in gone:
            for dst in crossed.get(src, ()):
                if result.pop((src, dst), None) is not None:
                    touched.add((src, dst))
            # The self-route carries no links, so it is not in any
            # usage bucket — but a node without links has no row at
            # all in a fresh populate.
            if result.pop((src, src), None) is not None:
                touched.add((src, src))
        kept = len(result)
    else:
        result = {}
        for pair, hops in old_routes.items():
            src = pair[0]
            dsts = drop_only.get(src)
            if dsts is not None:
                if pair[1] in dsts:
                    touched.add(pair)
                else:
                    result[pair] = hops
                    kept += 1
            elif src in defer or src in gone:
                by_src.setdefault(src, []).append(pair[1])
            else:
                result[pair] = hops
                kept += 1
        for src in gone:
            touched.update((src, dst) for dst in by_src.pop(src, ()))

    weights = plane_weights(new_links, plane)
    with _obs.span("routing.reroute", plane=plane, sources=len(affected)):
        for src in sorted(defer):
            stale_dsts = by_src.get(src, ())
            bfs = bfs_layers(new_adj, src)
            crossed_dsts = crossed.get(src, ())
            if src not in full_dp and all(
                dst not in bfs[0] for dst in crossed_dsts
            ):
                # Asymmetric-map probe confirmed a pure drop for this
                # source: keep the row, drop the partitioned pairs.
                for dst in stale_dsts:
                    if dst in crossed_dsts:
                        touched.add((src, dst))
                    else:
                        result[(src, dst)] = old_routes[(src, dst)]
                        kept += 1
                continue
            routes = routes_from_source(new_adj, weights, src, bfs=bfs)
            for dst, hops in routes.items():
                pair = (src, dst)
                result[pair] = hops
                rerouted += 1
                if hops != old_routes.get(pair) or pair in delta_pairs:
                    touched.add(pair)
            for dst in stale_dsts:
                if (src, dst) not in result:
                    touched.add((src, dst))  # partitioned away
    stats = RerouteStats(
        plane=plane,
        sources_total=len(node_list),
        sources_rerouted=len(affected),
        pairs_rerouted=rerouted,
        pairs_kept=kept,
        pairs_changed=len(touched),
        touched_nodes=tuple(sorted({n for pair in touched for n in pair})),
    )
    _obs.count("routing.rerouted_pairs", rerouted)
    _obs.count("routing.reroute_skipped_pairs", kept)
    return result, stats
