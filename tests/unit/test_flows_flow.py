"""Flow record validation."""

import pytest

from repro.errors import SimulationError
from repro.flows.flow import Flow


def test_defaults():
    f = Flow(name="f", resources=("a", "b"))
    assert f.demand_gbps == float("inf")
    assert f.size_bytes is None
    assert f.weight == 1.0
    assert f.start_s == 0.0


def test_negative_demand_rejected():
    with pytest.raises(SimulationError):
        Flow(name="f", resources=(), demand_gbps=-1.0)


def test_zero_weight_rejected():
    with pytest.raises(SimulationError):
        Flow(name="f", resources=(), weight=0.0)


def test_zero_size_rejected():
    with pytest.raises(SimulationError):
        Flow(name="f", resources=(), size_bytes=0)


def test_duplicate_resource_rejected():
    with pytest.raises(SimulationError):
        Flow(name="f", resources=("r", "r"))


def test_tags_are_mutable_per_instance():
    a = Flow(name="a", resources=())
    b = Flow(name="b", resources=())
    a.tags["k"] = 1
    assert "k" not in b.tags
