"""Eq. 1: multi-user aggregate bandwidth prediction.

    BW_io = sum_i alpha_i% x BW_i

where ``BW_i`` is the average bandwidth of performance class ``i`` (for
the *operation being predicted*) and ``alpha_i`` the fraction of
data-access streams coming from class ``i``.  The paper validates this
on a 50/50 RDMA_READ mixture from nodes 2 (class 2) and 0 (class 3):
predicted 20.017 Gbps vs 19.415 measured — 3.1 % relative error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.model import IOPerformanceModel
from repro.errors import ModelError

__all__ = ["MixturePredictor", "PredictionReport"]


@dataclass(frozen=True)
class PredictionReport:
    """Predicted vs measured aggregate, with the paper's error metric."""

    predicted_gbps: float
    measured_gbps: float

    @property
    def relative_error(self) -> float:
        """``|predicted - measured| / measured`` (the paper's epsilon)."""
        return abs(self.predicted_gbps - self.measured_gbps) / self.measured_gbps

    def render(self) -> str:
        """One-line summary."""
        return (
            f"predicted {self.predicted_gbps:.3f} Gbps, measured "
            f"{self.measured_gbps:.3f} Gbps, relative error "
            f"{100 * self.relative_error:.1f} %"
        )


class MixturePredictor:
    """Predict multi-user aggregates from a class model.

    Parameters
    ----------
    model:
        The memcpy-derived class structure (which nodes share a class).
    operation_values:
        Per-node measured bandwidth of the operation being predicted
        (e.g. an RDMA_READ node sweep).  ``BW_i`` is the mean of each
        class's nodes under this operation — exactly the 'Avg' cells of
        Tables IV/V.
    """

    def __init__(
        self,
        model: IOPerformanceModel,
        operation_values: Mapping[int, float],
    ) -> None:
        missing = [n for n in model.values if n not in operation_values]
        if missing:
            raise ModelError(f"operation values missing for nodes {missing}")
        self.model = model
        self.operation_values = dict(operation_values)
        self._class_avg = {
            cls.rank: float(np.mean([operation_values[n] for n in cls.node_ids]))
            for cls in model.classes
        }

    def class_avg(self, rank: int) -> float:
        """``BW_i`` for class ``rank`` under the operation."""
        try:
            return self._class_avg[rank]
        except KeyError as exc:
            raise ModelError(f"model has no class {rank}") from exc

    def predict_fractions(self, alpha: Mapping[int, float]) -> float:
        """Eq. 1 with explicit class fractions (rank -> alpha_i)."""
        total = sum(alpha.values())
        if total <= 0:
            raise ModelError("class fractions must sum to a positive value")
        return sum(
            (share / total) * self.class_avg(rank) for rank, share in alpha.items()
        )

    def predict_streams(self, stream_nodes: Iterable[int]) -> float:
        """Eq. 1 with one entry per stream, mapped through the classes.

        This is the paper's usage: "two processes transfer data from
        node 2 ... and two other processes access from node 0" becomes
        ``predict_streams([2, 2, 0, 0])``.
        """
        nodes = list(stream_nodes)
        if not nodes:
            raise ModelError("need at least one stream")
        alpha: dict[int, float] = {}
        for node in nodes:
            rank = self.model.class_of(node).rank
            alpha[rank] = alpha.get(rank, 0.0) + 1.0
        return self.predict_fractions(alpha)

    def validate(self, measured_gbps: float, stream_nodes: Iterable[int]) -> PredictionReport:
        """Compare a prediction against a measured aggregate."""
        if measured_gbps <= 0:
            raise ModelError(f"measured aggregate must be positive, got {measured_gbps}")
        return PredictionReport(
            predicted_gbps=self.predict_streams(stream_nodes),
            measured_gbps=measured_gbps,
        )
