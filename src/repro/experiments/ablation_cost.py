"""A3 — §V-B cost reduction: probe one node per class.

The paper: for the node-7 read model, four classes stand in for eight
node setups — a 50 % cut.  We additionally verify the cut is *sound*:
benchmarking only the representative nodes predicts the skipped nodes'
RDMA_READ bandwidth within a tight tolerance.
"""

from __future__ import annotations

from repro.bench.fio import FioRunner
from repro.core.characterize import HostCharacterizer
from repro.experiments.common import (
    IO_NODE,
    check,
    check_close,
    default_machine,
    default_registry,
)
from repro.experiments.registry import ExperimentResult
from repro.experiments.sweeps import operation_sweep

TITLE = "Ablation: characterization cost reduction via class representatives"


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Measure the cost cut and its prediction error on skipped nodes."""
    m = default_machine(machine)
    registry = default_registry(registry)
    characterizer = HostCharacterizer(m, registry=registry,
                                      runs=10 if quick else 100)
    result = characterizer.characterize(IO_NODE)
    read_model = result.read_model

    runner = FioRunner(m, registry=registry)
    # Full sweep = ground truth; representative sweep = the reduced plan.
    full = operation_sweep(runner, "rdma", "read", numjobs=4)
    reps = read_model.representative_nodes()
    rep_values = {node: full[node] for node in reps}

    # Predict every skipped node from its class representative.
    errors = {}
    for cls in read_model.classes:
        rep = cls.node_ids[0]
        for node in cls.node_ids[1:]:
            errors[node] = abs(rep_values[rep] - full[node]) / full[node]
    worst = max(errors.values()) if errors else 0.0

    checks = (
        check_close(
            "read-model probe reduction", read_model.probe_cost_reduction(), 0.5, 0.01
        ),
        check(
            "combined write+read probes cut by >= 50 %",
            result.cost_reduction >= 0.5,
            f"{result.reduced_probes} probes instead of {result.exhaustive_probes}",
        ),
        check(
            "representatives predict skipped nodes within 6 %",
            worst <= 0.06,
            f"worst error {100 * worst:.1f} % across {len(errors)} skipped nodes",
        ),
    )
    estimate = result.time_estimate()
    checks = checks + (
        check(
            "the memcpy model is orders of magnitude cheaper than one "
            "exhaustive I/O pass",
            estimate.memcpy_probe_s < 0.01 * estimate.exhaustive_fio_s,
            f"{estimate.memcpy_probe_s:.0f} s vs "
            f"{estimate.exhaustive_fio_s / 3600:.1f} h",
        ),
    )
    text = "\n".join(
        [
            result.render(),
            "",
            f"read representatives: {reps}",
            "per-skipped-node prediction error: "
            + ", ".join(f"n{n}: {100 * e:.1f} %" for n, e in sorted(errors.items())),
        ]
    )
    return ExperimentResult(
        exp_id="a3", title=TITLE, text=text,
        data={
            "cost_reduction": result.cost_reduction,
            "worst_rep_error": worst,
        },
        checks=checks,
    )
