"""Engine response curves: NUMA path bandwidth -> protocol bandwidth.

An I/O protocol's achieved bandwidth saturates at its own ceiling when
the DMA path is wide, and falls off as the path narrows — but each
protocol falls off differently (TCP's spread is compressed by CPU
protocol cost; the SSD's is not).  We model this with a *deficit curve*:

    bw(path) = cap - beta * max(0, path_ref - path) ** gamma

``path_ref`` is the path bandwidth at which the protocol saturates
(the class-1 memcpy level); ``beta``/``gamma`` shape the fall-off.  The
constants are fitted to the paper's Table IV/V measurements; the fit
residuals are recorded in EXPERIMENTS.md and an ablation bench probes
sensitivity to them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError

__all__ = ["ResponseCurve", "EngineProfile"]


@dataclass(frozen=True)
class ResponseCurve:
    """Deficit-form response of a protocol to DMA path bandwidth."""

    cap_gbps: float
    path_ref_gbps: float
    beta: float
    gamma: float

    def __post_init__(self) -> None:
        if self.cap_gbps <= 0:
            raise DeviceError(f"curve cap must be positive, got {self.cap_gbps!r}")
        if self.path_ref_gbps <= 0:
            raise DeviceError(f"path_ref must be positive, got {self.path_ref_gbps!r}")
        if self.beta < 0 or self.gamma <= 0:
            raise DeviceError(f"invalid curve shape beta={self.beta!r} gamma={self.gamma!r}")

    def value(self, path_gbps: float) -> float:
        """Protocol bandwidth (Gbps) over a placement with this path bandwidth."""
        if path_gbps <= 0:
            raise DeviceError(f"path bandwidth must be positive, got {path_gbps!r}")
        deficit = max(0.0, self.path_ref_gbps - path_gbps)
        value = self.cap_gbps - self.beta * deficit**self.gamma
        # A starved path never drives the protocol to zero in practice;
        # clamp to a sliver of the cap so flows always make progress.
        return max(value, 0.05 * self.cap_gbps)


@dataclass(frozen=True)
class EngineProfile:
    """Everything the fio engines need to simulate one protocol direction.

    Parameters
    ----------
    name:
        fio-style engine/direction name (``"tcp_send"``, ``"rdma_read"``,
        ``"libaio_write"``, ...).
    curve:
        The NUMA response curve (see module docstring).
    cpu_gbps_per_stream:
        Protocol-processing throughput one stream's worth of CPU can
        sustain; ``None`` for fully offloaded protocols (RDMA).  This is
        why TCP needs ~4 streams to saturate (Fig. 5) while one RDMA
        stream suffices (Fig. 6).
    per_stream_cap_gbps:
        Hard per-stream ceiling independent of CPU (RDMA QP scheduling).
    irq_sensitivity:
        Throughput factor applied when the benchmark shares its node with
        the device's interrupt handling (1.0 = immune).  Reproduces
        "node 6 beats node 7" (§IV-B1).
    sigma:
        Multiplicative measurement noise (lognormal sigma) for a
        low-contention run.
    crowd_sigma:
        Extra noise once streams exceed the saturation point — the
        paper's "unexpected behaviour" at 8-16 TCP streams.
    crowd_threshold:
        Concurrent-stream count at which ``crowd_sigma`` takes over
        (8 in the paper's Fig. 5).
    mix_coef:
        Aggregate penalty coefficient for serving a *mixture* of NUMA
        classes at once (buffer bouncing between paths); calibrated from
        the paper's Eq. 1 worked example (predicted 20.017 vs measured
        19.415 Gbps).
    per_io_overhead_bytes:
        Fixed per-request cost expressed as equivalent payload bytes;
        small blocks amortise it poorly.  The block-size factor is
        *normalised at 128 KiB* (Table III's block size), so calibrated
        values are exact at the paper's operating point and the model
        only extrapolates away from it.
    """

    name: str
    curve: ResponseCurve
    cpu_gbps_per_stream: float | None = None
    per_stream_cap_gbps: float | None = None
    irq_sensitivity: float = 1.0
    sigma: float = 0.01
    crowd_sigma: float = 0.03
    crowd_threshold: int = 8
    mix_coef: float = 0.06
    per_io_overhead_bytes: int = 4096

    #: The block size the calibration targets (Table III).
    REFERENCE_BLOCKSIZE = 128 * 1024

    def __post_init__(self) -> None:
        if self.cpu_gbps_per_stream is not None and self.cpu_gbps_per_stream <= 0:
            raise DeviceError(f"{self.name}: cpu_gbps_per_stream must be positive")
        if self.per_stream_cap_gbps is not None and self.per_stream_cap_gbps <= 0:
            raise DeviceError(f"{self.name}: per_stream_cap_gbps must be positive")
        if not 0 < self.irq_sensitivity <= 1:
            raise DeviceError(f"{self.name}: irq_sensitivity must be in (0, 1]")
        if self.sigma < 0 or self.crowd_sigma < 0 or self.mix_coef < 0:
            raise DeviceError(f"{self.name}: noise/mix coefficients must be >= 0")
        if self.per_io_overhead_bytes < 0:
            raise DeviceError(f"{self.name}: per_io_overhead_bytes must be >= 0")

    def blocksize_factor(self, blocksize: int) -> float:
        """Throughput retained at ``blocksize`` relative to 128 KiB.

        ``amortisation(bs) = bs / (bs + per_io_overhead_bytes)``,
        normalised so the factor is exactly 1.0 at the calibration
        block size.
        """
        if blocksize <= 0:
            raise DeviceError(f"{self.name}: blocksize must be positive")
        if self.per_io_overhead_bytes == 0:
            return 1.0

        def amortisation(bs: int) -> float:
            return bs / (bs + self.per_io_overhead_bytes)

        return amortisation(blocksize) / amortisation(self.REFERENCE_BLOCKSIZE)
