"""Flow-level bandwidth sharing.

All contention in the simulator — streams sharing a NIC, copy threads
sharing a memory controller, DMA traffic sharing an HT link — reduces to
*max-min fair* sharing of capacitated resources, the standard flow-level
abstraction for long-lived bulk transfers.

:func:`~repro.flows.maxmin.maxmin_allocate` solves one allocation;
:class:`~repro.flows.network.FlowNetwork` advances a set of finite-size
flows through time, recomputing the allocation at every arrival or
completion, and reports per-flow completion times and average bandwidth
— exactly the quantity ``fio`` reports for the paper's 400-GB streams.
"""

from repro.flows.flow import Flow
from repro.flows.maxmin import maxmin_allocate
from repro.flows.network import FlowNetwork, FlowOutcome

__all__ = ["Flow", "maxmin_allocate", "FlowNetwork", "FlowOutcome"]
