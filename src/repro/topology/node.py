"""NUMA node, core, and package records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.units import GiB

__all__ = ["Core", "NumaNode", "Package"]


@dataclass(frozen=True)
class Core:
    """A CPU core, identified globally and by its home node."""

    core_id: int
    node_id: int

    def __post_init__(self) -> None:
        if self.core_id < 0 or self.node_id < 0:
            raise TopologyError(f"negative core/node id: {self!r}")


@dataclass(frozen=True)
class NumaNode:
    """One NUMA node: a CPU die plus its directly attached memory.

    Parameters
    ----------
    node_id:
        Global node index (0-based, matching ``numactl`` numbering).
    package_id:
        The physical CPU package (socket) this die belongs to.
    cores:
        The cores on this die.
    memory_bytes:
        Installed DRAM behind this node's controller.
    dram_gbps:
        Streaming capacity of the memory controller for bulk/DMA traffic,
        in Gbps of payload.
    pio_ctrl_gbps:
        Controller-side cap on *reported* PIO streaming bandwidth (STREAM
        semantics count both the read and the write of a copy; coherent
        traffic adds probe overhead, so this is well below ``dram_gbps``).
    os_resident_bytes:
        Memory pinned by the OS at boot (kernel, buffers, shared
        libraries).  On the reference host this is concentrated on node 0,
        reproducing the paper's ``numactl --hardware`` free-memory
        observation.
    """

    node_id: int
    package_id: int
    cores: tuple[Core, ...]
    memory_bytes: int = 4 * GiB
    dram_gbps: float = 56.0
    pio_ctrl_gbps: float = 31.0
    os_resident_bytes: int = 0

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise TopologyError(f"negative node id: {self.node_id}")
        if not self.cores:
            raise TopologyError(f"node {self.node_id} has no cores")
        for core in self.cores:
            if core.node_id != self.node_id:
                raise TopologyError(
                    f"core {core.core_id} claims node {core.node_id}, "
                    f"but is listed under node {self.node_id}"
                )
        if self.memory_bytes <= 0:
            raise TopologyError(f"node {self.node_id}: memory_bytes must be positive")
        if self.dram_gbps <= 0 or self.pio_ctrl_gbps <= 0:
            raise TopologyError(f"node {self.node_id}: controller bandwidth must be positive")
        if not 0 <= self.os_resident_bytes <= self.memory_bytes:
            raise TopologyError(
                f"node {self.node_id}: os_resident_bytes outside [0, memory_bytes]"
            )

    @property
    def n_cores(self) -> int:
        """Number of cores on this die."""
        return len(self.cores)

    @property
    def free_bytes(self) -> int:
        """Memory available to applications on an idle system."""
        return self.memory_bytes - self.os_resident_bytes


@dataclass(frozen=True)
class Package:
    """A physical CPU package (socket) containing one or more dies."""

    package_id: int
    node_ids: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.package_id < 0:
            raise TopologyError(f"negative package id: {self.package_id}")
        if not self.node_ids:
            raise TopologyError(f"package {self.package_id} contains no nodes")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise TopologyError(f"package {self.package_id} lists a node twice")
