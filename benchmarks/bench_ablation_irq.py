"""A5 — ablation: the node-6-beats-node-7 effect follows IRQ placement."""


def test_ablation_irq(run_paper_experiment):
    result = run_paper_experiment("a5")
    assert result.data["tuned"][6] > result.data["tuned"][7]
