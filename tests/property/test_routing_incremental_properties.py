"""Incremental re-routing vs a from-scratch rebuild.

The self-healing control plane leans on
:meth:`~repro.routing.table.RoutingTable.derive` being **bit-identical**
to constructing a fresh table over the faulted link map and populating
it — same routes, same omitted (partitioned) pairs, same lazy
:class:`~repro.errors.RoutingError` behavior.  These properties sweep
random connected topologies × random fault *sequences* (cable failures,
derates, restores, applied cumulatively) and compare the derived cache
against the rebuild at every step, then pin the machine-level contract:
a :class:`~repro.faults.plan.FaultedMachine` re-routes incrementally to
the same routes, hop matrix, and fingerprint a fresh construction gets,
and fault-then-restore round trips carry every route over verbatim.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError, TopologyError
from repro.faults import FaultedMachine, LinkDegrade, LinkFail
from repro.interconnect.link import DirectedLink
from repro.interconnect.planes import ALL_PLANES, PLANE_DMA
from repro.routing.table import RoutingTable
from repro.solver.capacity import machine_fingerprint
from repro.topology.builders import reference_host
from repro.topology.distance import hop_matrix

NS = 1e-9


@st.composite
def link_maps(draw):
    """A connected directed link map with asymmetric attributes.

    Same shape as the batch-routing property strategy: spanning tree
    plus random chords, every direction drawing its own attributes from
    small sets so routes frequently tie and the tie-break chain decides.
    """
    n = draw(st.integers(min_value=3, max_value=8))
    nodes = list(range(n))
    perm = draw(st.permutations(nodes))
    edges = set()
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        a, b = perm[i], perm[j]
        edges.add((min(a, b), max(a, b)))
    spare = [
        (a, b) for a in nodes for b in nodes if a < b and (a, b) not in edges
    ]
    if spare:
        extras = draw(
            st.lists(st.sampled_from(spare), min_size=0, max_size=min(len(spare), n))
        )
        edges.update(extras)
    links = {}
    for a, b in sorted(edges):
        for s, d in ((a, b), (b, a)):
            links[(s, d)] = DirectedLink(
                src=s,
                dst=d,
                width_bits=draw(st.sampled_from([8, 16])),
                gts=3.2,
                dma_credit=draw(st.sampled_from([0.5, 0.9, 1.0])),
                pio_cap_gbps=draw(st.sampled_from([10.0, 20.0, 25.0])),
                pio_latency_s=draw(
                    st.sampled_from([5 * NS, 12.5 * NS, 40 * NS, 130 * NS])
                ),
            )
    return links


def _populated(links):
    table = RoutingTable(links)
    for plane in ALL_PLANES:
        table.populate(plane, strict=False)
    return table


def _fault_step(draw, healthy, current):
    """One mutation of ``current``: fail a cable, derate one, or restore."""
    op = draw(st.sampled_from(["fail", "derate", "restore"]))
    if op == "restore":
        return dict(healthy)
    cables = sorted({(min(a, b), max(a, b)) for a, b in current})
    if not cables:
        return dict(healthy)
    a, b = draw(st.sampled_from(cables))
    links = dict(current)
    if op == "fail":
        del links[(a, b)]
        del links[(b, a)]
        return links
    factor = draw(st.sampled_from([0.3, 0.6]))
    for ends in ((a, b), (b, a)):
        link = links[ends]
        links[ends] = dataclasses.replace(
            link,
            dma_credit=link.dma_credit * factor,
            pio_cap_gbps=link.pio_cap_gbps * factor,
        )
    return links


@given(link_maps(), st.data())
@settings(max_examples=60, deadline=None)
def test_derive_equals_full_rebuild_across_fault_sequences(links, data):
    """Stacked fail/derate/restore deltas stay bit-identical to rebuilds."""
    table = _populated(links)
    current = dict(links)
    steps = data.draw(st.integers(min_value=1, max_value=3))
    for _ in range(steps):
        current = _fault_step(data.draw, links, current)
        derived = table.derive(current)
        fresh = _populated(current)
        assert derived._cache == fresh._cache
        table = derived  # next delta derives from the derived table


@given(link_maps(), st.data())
@settings(max_examples=40, deadline=None)
def test_partitioned_pairs_raise_lazily_after_derive(link_map, data):
    """Pairs a failure partitioned raise RoutingError on lookup, lazily."""
    table = _populated(link_map)
    cables = sorted({(min(a, b), max(a, b)) for a, b in link_map})
    doomed = data.draw(
        st.lists(st.sampled_from(cables), min_size=1, max_size=len(cables), unique=True)
    )
    current = dict(link_map)
    for a, b in doomed:
        del current[(a, b)]
        del current[(b, a)]
    derived = table.derive(current)
    fresh = _populated(current)
    assert derived._cache == fresh._cache
    nodes = sorted({n for ends in link_map for n in ends})
    for plane in ALL_PLANES:
        for src in nodes:
            for dst in nodes:
                try:
                    expected = fresh.route(plane, src, dst)
                except RoutingError:
                    with pytest.raises(RoutingError):
                        derived.route(plane, src, dst)
                else:
                    assert derived.route(plane, src, dst) == expected


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_faulted_machine_reroutes_like_fresh_construction(data):
    """FaultedMachine routes/hop matrix/fingerprint match a rebuild."""
    host = reference_host(with_devices=False)
    for plane in ALL_PLANES:
        host.routing.populate(plane, strict=False)
    cables = sorted({(min(a, b), max(a, b)) for a, b in host.links})
    picks = data.draw(
        st.lists(st.sampled_from(cables), min_size=1, max_size=2, unique=True)
    )
    kind = data.draw(st.sampled_from(["fail", "derate"]))
    if kind == "fail":
        faults = tuple(LinkFail(a, b) for a, b in picks)
    else:
        faults = tuple(LinkDegrade(a, b, 0.4) for a, b in picks)
    faulted = FaultedMachine(host, faults)

    rebuilt = FaultedMachine(
        reference_host(with_devices=False), faults, name=faulted.name
    )
    assert machine_fingerprint(faulted) == machine_fingerprint(rebuilt)
    fresh = _populated(faulted._links)
    assert faulted.routing._cache == fresh._cache
    try:
        expected = hop_matrix(rebuilt)
    except TopologyError:
        expected = None  # partitioned fabric: hop matrix undefined
    if expected is not None:
        np.testing.assert_array_equal(hop_matrix(faulted), expected)

    # Fault-then-restore round trip: byte-identical fingerprint and a
    # pure carry-over (zero sources re-routed on the empty delta).
    restored = faulted.restore()
    assert machine_fingerprint(restored) == machine_fingerprint(host)
    assert restored.routing._cache == host.routing._cache
    for stats in restored.routing.last_reroute.values():
        assert stats.sources_rerouted == 0
        assert stats.pairs_changed == 0


def test_derive_carries_surviving_overrides_only():
    host = reference_host(with_devices=False)
    table = host.routing
    for plane in ALL_PLANES:
        table.populate(plane, strict=False)
    adj = table.adjacency
    # One 2-hop override through node 1 (dies with node 1's cables)
    # and one avoiding node 1 entirely (survives the derive).
    mid = 1
    n1, n2 = sorted(adj[mid])[:2]
    doomed = (n1, mid, n2)
    other = next(
        n for n, outs in sorted(adj.items())
        if n != mid and mid not in outs and len([o for o in outs if o != mid]) >= 2
    )
    o1, o2 = [o for o in sorted(adj[other]) if o != mid][:2]
    survivor = (o1, other, o2)
    table.set_route(PLANE_DMA, doomed)
    table.set_route(PLANE_DMA, survivor)
    cut = {(a, b) for a, b in host.links if mid in (a, b)}
    current = {ends: link for ends, link in host.links.items() if ends not in cut}
    derived = table.derive(current)
    assert derived._overrides == {(PLANE_DMA, o1, o2): survivor}
    assert derived.route(PLANE_DMA, o1, o2) == survivor
