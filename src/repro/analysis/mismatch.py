"""STREAM-model vs I/O-measurement mismatch (§IV-B).

Quantifies the paper's central negative result: the STREAM-derived
CPU-centric and memory-centric models of the device node mis-predict
I/O bandwidth orderings, while the memcpy model predicts them.  The
flagship instance: STREAM ranks nodes {0, 1} 43-88 % *above* {2, 3},
but RDMA_READ measures {0, 1} 15-18.4 % *below* {2, 3}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.validation import rank_correlation
from repro.errors import ModelError

__all__ = ["GroupComparison", "MismatchReport", "mismatch_report", "group_ratio"]


def group_ratio(
    values: Mapping[int, float], group_a: tuple[int, ...], group_b: tuple[int, ...]
) -> float:
    """mean(values over A) / mean(values over B)."""
    missing = [n for n in (*group_a, *group_b) if n not in values]
    if missing:
        raise ModelError(f"values missing for nodes {missing}")
    a = float(np.mean([values[n] for n in group_a]))
    b = float(np.mean([values[n] for n in group_b]))
    if b <= 0:
        raise ModelError("group B mean must be positive")
    return a / b


@dataclass(frozen=True)
class GroupComparison:
    """The {0,1}-vs-{2,3} style comparison under one model/operation."""

    label: str
    ratio: float  # mean(group A) / mean(group B)

    @property
    def a_wins(self) -> bool:
        """True when group A outperforms group B."""
        return self.ratio > 1.0


@dataclass(frozen=True)
class MismatchReport:
    """Correlations of each candidate model against measured operations."""

    #: model name -> operation name -> Spearman rho.
    correlations: dict[str, dict[str, float]]
    #: model/operation label -> {0,1} vs {2,3} comparison.
    group_checks: dict[str, GroupComparison]

    def mean_rho(self, model: str) -> float:
        """Average correlation of one model across all operations."""
        if model not in self.correlations:
            raise ModelError(f"no model named {model!r} in report")
        return float(np.mean(list(self.correlations[model].values())))

    def best_model(self) -> str:
        """The model with the highest mean correlation (the paper's
        claim: the memcpy model)."""
        return max(self.correlations, key=self.mean_rho)

    def reversal_demonstrated(self, stream_model: str, operation: str) -> bool:
        """True when the STREAM model ranks A over B but the operation
        ranks B over A (or vice versa)."""
        key_model = f"{stream_model}"
        key_op = f"{operation}"
        if key_model not in self.group_checks or key_op not in self.group_checks:
            raise ModelError(
                f"group checks missing for {stream_model!r} or {operation!r}"
            )
        return (
            self.group_checks[key_model].a_wins
            != self.group_checks[key_op].a_wins
        )

    def render(self) -> str:
        """Correlation table plus the group-ratio checks."""
        operations = sorted({op for ops in self.correlations.values() for op in ops})
        width = 14
        lines = ["Model-vs-measurement rank correlations (Spearman rho):"]
        lines.append("model".ljust(18) + "".join(op.rjust(width) for op in operations)
                     + "mean".rjust(width))
        for model in sorted(self.correlations, key=self.mean_rho, reverse=True):
            cells = "".join(
                f"{self.correlations[model].get(op, float('nan')):+.3f}".rjust(width)
                for op in operations
            )
            lines.append(model.ljust(18) + cells + f"{self.mean_rho(model):+.3f}".rjust(width))
        lines.append("Group ratios (mean{0,1} / mean{2,3} unless labelled):")
        for label, check in sorted(self.group_checks.items()):
            lines.append(
                f"  {label:24s} ratio {check.ratio:.2f} "
                f"({'A over B' if check.a_wins else 'B over A'})"
            )
        return "\n".join(lines)


def mismatch_report(
    models: Mapping[str, Mapping[int, float]],
    operations: Mapping[str, Mapping[int, float]],
    group_a: tuple[int, ...] = (0, 1),
    group_b: tuple[int, ...] = (2, 3),
) -> MismatchReport:
    """Cross-correlate candidate models against measured operations.

    Parameters
    ----------
    models:
        Candidate per-node models (e.g. ``{"cpu_centric": ...,
        "memory_centric": ..., "iomodel_read": ...}``).
    operations:
        Measured per-node I/O bandwidths (e.g. RDMA_READ node sweep).
    group_a, group_b:
        Node groups for the ratio checks (the paper's {0,1} vs {2,3}).
    """
    if not models or not operations:
        raise ModelError("need at least one model and one operation")
    correlations = {
        model_name: {
            op_name: rank_correlation(model_vals, op_vals)
            for op_name, op_vals in operations.items()
        }
        for model_name, model_vals in models.items()
    }
    group_checks = {}
    for name, values in {**models, **operations}.items():
        group_checks[name] = GroupComparison(
            label=name, ratio=group_ratio(values, group_a, group_b)
        )
    return MismatchReport(correlations=correlations, group_checks=group_checks)
