"""Performance-class construction."""

import pytest

from repro.core.classify import PerfClass, classify_kmeans, classify_nodes
from repro.errors import ModelError


@pytest.fixture()
def write_values(host):
    return {i: host.dma_path_gbps(i, 7) for i in host.node_ids}


@pytest.fixture()
def read_values(host):
    return {i: host.dma_path_gbps(7, i) for i in host.node_ids}


class TestPerfClass:
    def test_statistics(self):
        cls = PerfClass(rank=1, node_ids=(6, 7), values={6: 47.0, 7: 55.9})
        assert cls.avg == pytest.approx(51.45)
        assert cls.lo == 47.0
        assert cls.hi == 55.9
        assert 6 in cls and 3 not in cls

    def test_validation(self):
        with pytest.raises(ModelError):
            PerfClass(rank=0, node_ids=(1,), values={1: 1.0})
        with pytest.raises(ModelError):
            PerfClass(rank=1, node_ids=(), values={})
        with pytest.raises(ModelError):
            PerfClass(rank=1, node_ids=(1, 2), values={1: 1.0})


class TestClassifyNodes:
    def test_paper_write_classes(self, host, write_values):
        classes = classify_nodes(write_values, host, target_node=7)
        assert [sorted(c.node_ids) for c in classes] == [
            [6, 7], [0, 1, 4, 5], [2, 3]
        ]

    def test_paper_read_classes(self, host, read_values):
        classes = classify_nodes(read_values, host, target_node=7)
        assert [sorted(c.node_ids) for c in classes] == [
            [6, 7], [2, 3], [0, 1, 5], [4]
        ]

    def test_local_and_neighbor_always_first(self, host, read_values):
        # Even with terrible values, {local, neighbour} stay in class 1.
        skewed = dict(read_values)
        skewed[6] = 1.0
        classes = classify_nodes(skewed, host, target_node=7)
        assert 6 in classes[0] and 7 in classes[0]

    def test_rank_ordering(self, host, write_values):
        classes = classify_nodes(write_values, host, target_node=7)
        assert [c.rank for c in classes] == list(range(1, len(classes) + 1))

    def test_classes_partition_nodes(self, host, write_values):
        classes = classify_nodes(write_values, host, target_node=7)
        all_nodes = sorted(n for c in classes for n in c.node_ids)
        assert all_nodes == list(host.node_ids)

    def test_rel_gap_controls_splitting(self, host, write_values):
        coarse = classify_nodes(write_values, host, 7, rel_gap=0.9)
        fine = classify_nodes(write_values, host, 7, rel_gap=0.001)
        assert len(coarse) <= len(fine)
        assert len(coarse) == 2  # class 1 + one catch-all remote class

    def test_missing_node_rejected(self, host, write_values):
        del write_values[3]
        with pytest.raises(ModelError):
            classify_nodes(write_values, host, 7)

    def test_non_positive_value_rejected(self, host, write_values):
        write_values[3] = 0.0
        with pytest.raises(ModelError):
            classify_nodes(write_values, host, 7)

    def test_unknown_target_rejected(self, host, write_values):
        with pytest.raises(ModelError):
            classify_nodes(write_values, host, 42)


class TestClassifyKmeans:
    def test_agrees_with_gap_clustering_on_writes(self, host, write_values):
        gap = classify_nodes(write_values, host, 7)
        km = classify_kmeans(write_values, host, 7, k=3)
        assert [sorted(c.node_ids) for c in km] == [
            sorted(c.node_ids) for c in gap
        ]

    def test_k_one_collapses_remotes(self, host, write_values):
        km = classify_kmeans(write_values, host, 7, k=2)
        assert len(km) == 2

    def test_invalid_k(self, host, write_values):
        with pytest.raises(ModelError):
            classify_kmeans(write_values, host, 7, k=0)
