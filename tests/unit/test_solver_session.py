"""SolverSession: capacity caching, fingerprints, invalidation, stats."""

import pytest

from repro.bench.engines import MemcpyEngine
from repro.bench.jobfile import FioJob
from repro.errors import SimulationError
from repro.flows.flow import Flow
from repro.memory.controller import controller_capacities
from repro.rng import RngRegistry
from repro.solver.capacity import build_capacities, link_capacities, machine_fingerprint
from repro.solver.session import SolverSession, get_session, reset_sessions
from repro.topology.modify import with_dram_gbps, with_link_credit, with_link_removed


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_sessions()
    yield
    reset_sessions()


class TestFingerprint:
    def test_stable_across_calls(self, bare_host):
        assert machine_fingerprint(bare_host) == machine_fingerprint(bare_host)

    def test_structurally_identical_machines_match(self, bare_host):
        # A no-op edit round-trips through the serialisation layer.
        copy = with_dram_gbps(
            bare_host, 0, bare_host.node(0).dram_gbps, rename=False
        )
        assert machine_fingerprint(copy) == machine_fingerprint(bare_host)

    def test_changes_when_controller_changes(self, bare_host):
        modified = with_dram_gbps(bare_host, 0, 99.0)
        assert machine_fingerprint(modified) != machine_fingerprint(bare_host)

    def test_changes_when_link_removed(self, bare_host):
        modified = with_link_removed(bare_host, 3, 4)
        assert machine_fingerprint(modified) != machine_fingerprint(bare_host)


class TestCapacities:
    def test_equals_merged_controller_and_link_maps(self, bare_host):
        session = SolverSession(bare_host)
        expected = {
            **controller_capacities(bare_host),
            **link_capacities(bare_host),
        }
        assert session.capacities() == expected
        assert build_capacities(bare_host) == expected

    def test_returns_a_copy(self, bare_host):
        session = SolverSession(bare_host)
        caps = session.capacities()
        caps["extra"] = 1.0
        assert "extra" not in session.capacities()

    def test_built_once_then_served_from_cache(self, bare_host):
        session = SolverSession(bare_host)
        session.capacities()
        session.capacities()
        session.capacities()
        assert session.stats.capacity_builds == 1
        assert session.stats.capacity_hits == 2

    def test_machineless_session_needs_explicit_capacities(self):
        session = SolverSession()
        with pytest.raises(SimulationError):
            session.capacities()
        rates = session.rates(
            [Flow(name="f", resources=("r",))], {"r": 10.0}
        )
        assert rates["f"] == pytest.approx(10.0)


class TestInvalidation:
    """Editing a machine through topology.modify must never serve stale
    answers: the edited copy has a new fingerprint, hence a new session."""

    def test_dram_edit_refreshes_capacity_map(self, bare_host):
        stale = get_session(bare_host).capacities()
        modified = with_dram_gbps(bare_host, 0, 99.0)
        fresh = get_session(modified).capacities()
        assert fresh != stale
        assert fresh["ctrl-dma:0"] == pytest.approx(99.0)
        # The original machine's session still answers for the original.
        assert get_session(bare_host).capacities() == stale

    def test_link_removal_refreshes_capacities_and_routes(self, bare_host):
        before = get_session(bare_host)
        before.capacities()
        before.dma_path_gbps(2, 7)
        modified = with_link_removed(bare_host, 2, 7)
        after = get_session(modified)
        assert after is not before
        assert len(after.capacities()) == len(before.capacities()) - 2
        # Routing answers re-derive on the modified fabric (2->7 detours).
        assert after.dma_path_gbps(2, 7) != before.dma_path_gbps(2, 7)
        assert after.dma_path_gbps(2, 7) == pytest.approx(
            modified.dma_path_gbps(2, 7)
        )

    def test_link_credit_edit_gets_fresh_session(self, bare_host):
        get_session(bare_host)
        modified = with_link_credit(bare_host, 2, 7, 0.87)
        assert get_session(modified) is not get_session(bare_host)

    def test_same_topology_reuses_session(self, bare_host):
        assert get_session(bare_host) is get_session(bare_host)

    def test_explicit_invalidate_drops_caches(self, bare_host):
        session = SolverSession(bare_host)
        session.capacities()
        session.rates([Flow(name="f", resources=("ctrl-dma:0",))])
        session.dma_path_gbps(0, 7)
        session.invalidate()
        session.capacities()
        session.rates([Flow(name="f", resources=("ctrl-dma:0",))])
        assert session.stats.capacity_builds == 2
        assert session.stats.cache_misses == 2
        assert session.stats.cache_hits == 0


class TestAllocationMemoization:
    def test_repeat_solve_hits_cache(self, bare_host):
        session = SolverSession(bare_host)
        flows = [
            Flow(name="a", resources=("ctrl-dma:0",), demand_gbps=5.0),
            Flow(name="b", resources=("ctrl-dma:0",)),
        ]
        first = session.rates(flows)
        second = session.rates(flows)
        assert first == second
        assert session.stats.solves == 1
        assert session.stats.cache_hits == 1
        assert session.stats.hit_rate == pytest.approx(0.5)

    def test_flow_names_do_not_defeat_the_cache(self, bare_host):
        session = SolverSession(bare_host)
        session.rates([Flow(name="x", resources=("ctrl-dma:0",))])
        session.rates([Flow(name="y", resources=("ctrl-dma:0",))])
        assert session.stats.solves == 1
        assert session.stats.cache_hits == 1

    def test_rates_many_matches_sequential_rates(self, bare_host):
        session = SolverSession(bare_host)
        problems = [
            [Flow(name=f"f{i}", resources=(f"ctrl-dma:{i}",), demand_gbps=4.0 + i)]
            for i in range(4)
        ]
        batched = session.rates_many(problems)
        reference = SolverSession(bare_host)
        assert batched == [reference.rates(flows) for flows in problems]

    def test_rates_many_shares_the_allocation_cache(self, bare_host):
        session = SolverSession(bare_host)
        flows = [Flow(name="a", resources=("ctrl-dma:0",), demand_gbps=5.0)]
        session.rates_many([flows, flows, flows])
        assert session.stats.solves == 1
        assert session.stats.cache_hits == 2

    def test_path_lookups_memoized(self, bare_host):
        session = SolverSession(bare_host)
        for _ in range(3):
            assert session.dma_path_gbps(0, 7) == pytest.approx(
                bare_host.dma_path_gbps(0, 7)
            )
        assert session.stats.path_misses == 1
        assert session.stats.path_hits == 2


class TestStatsOnResults:
    def test_engine_result_carries_solver_stats(self, host):
        engine = MemcpyEngine(host)
        job = FioJob(name="m", engine="memcpy", rw="write", numjobs=4,
                     cpunodebind=0, target_node=7)
        result = engine.run(job, RngRegistry().stream("solver-stats"))
        assert result.solver_stats["solves"] >= 1
        assert result.solver_stats["events"] >= 1
        assert set(result.solver_stats) >= {
            "solves", "cache_hits", "cache_misses", "hit_rate",
            "events", "phase_wall_s",
        }

    def test_snapshot_is_detached(self, bare_host):
        session = SolverSession(bare_host)
        snap = session.stats.snapshot()
        session.rates([Flow(name="f", resources=("ctrl-dma:0",))])
        assert snap["solves"] == 0


class TestStatsCli:
    def test_stats_subcommand_reports_counters(self, capsys):
        from repro.cli.main import main

        assert main(["stats", "--workload", "fio"]) == 0
        out = capsys.readouterr().out
        assert "solver session stats" in out
        assert "max-min solves" in out
        assert "cache hits/misses" in out

    def test_stats_stream_counts_path_lookups(self, capsys):
        from repro.cli.main import main

        assert main(["stats", "--workload", "stream", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "path lookups" in out
        assert "64 computed" in out
