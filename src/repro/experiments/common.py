"""Shared helpers for experiment runners."""

from __future__ import annotations

from repro.experiments.registry import Check
from repro.rng import RngRegistry
from repro.topology.builders import reference_host
from repro.topology.machine import Machine

__all__ = [
    "default_machine",
    "default_registry",
    "check_close",
    "check_order",
    "check",
    "IO_NODE",
]

#: The device-attached node on the reference host (paper: node 7).
IO_NODE = 7


def default_machine(machine: Machine | None) -> Machine:
    """Use the supplied machine or build the reference host."""
    return machine if machine is not None else reference_host()


def default_registry(registry: RngRegistry | None) -> RngRegistry:
    """Use the supplied registry or the library-default seed."""
    return registry if registry is not None else RngRegistry()


def check(name: str, ok: bool, detail: str = "") -> Check:
    """Plain boolean check."""
    return Check(name=name, ok=bool(ok), detail=detail)


def check_close(name: str, measured: float, paper: float, rel_tol: float) -> Check:
    """Measured within ``rel_tol`` (relative) of the paper's value."""
    err = abs(measured - paper) / abs(paper)
    return Check(
        name=name,
        ok=err <= rel_tol,
        detail=f"measured {measured:.2f} vs paper {paper:.2f} ({100 * err:.1f} % off, "
        f"tol {100 * rel_tol:.0f} %)",
    )


def check_order(name: str, values: dict[int, float], expected_desc: list[list[int]],
                tolerance: float = 0.02) -> Check:
    """Groups listed first must outperform groups listed later (on means).

    ``tolerance`` forgives group-mean inversions below this relative
    margin.
    """
    import numpy as np

    means = [float(np.mean([values[n] for n in group])) for group in expected_desc]
    ok = all(
        later <= earlier * (1 + tolerance)
        for earlier, later in zip(means, means[1:])
    )
    detail = " > ".join(
        f"{group}:{mean:.1f}" for group, mean in zip(expected_desc, means)
    )
    return Check(name=name, ok=ok, detail=detail)
