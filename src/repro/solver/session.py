"""The :class:`SolverSession`: one shared bandwidth-resolution context.

A session binds together, for one machine topology:

* the **capacity map** (controllers + DMA links), built once and served
  from cache until the topology changes (a modified machine has a new
  fingerprint, hence a new session — see :func:`get_session`);
* the **allocation cache** shared by every flow network the session
  hands out, so repeated max-min problems (simulation event loops,
  characterization sweeps, benchmark rounds) are solved once;
* memoized **path bandwidth** lookups (``dma_path_gbps`` /
  ``pio_stream_gbps``), the per-placement inner loop of every service
  model;
* the **stats** recording what all of the above actually did.

Sessions can also be machine-less (``SolverSession()``): cluster-level
runners that assemble ad-hoc capacity maps still get the shared
allocation cache and instrumentation, just no machine-derived
capacities.
"""

from __future__ import annotations

import atexit
from collections import OrderedDict
from typing import Iterable, Mapping

from repro.errors import SimulationError
from repro.flows.network import FlowNetwork, FlowOutcome
from repro.solver.capacity import build_capacities, machine_fingerprint
from repro.solver.incremental import AllocationCache
from repro.solver.stats import SolverStats

__all__ = ["SolverSession", "get_session", "reset_sessions"]

#: LRU bound on the process-wide session registry.
_MAX_SESSIONS = 32

_SESSIONS: OrderedDict[str, "SolverSession"] = OrderedDict()


class SolverSession:
    """Cached, instrumented bandwidth resolution for one topology.

    Parameters
    ----------
    machine:
        The host this session serves, or ``None`` for an ad-hoc session
        (shared cache + stats over caller-supplied capacity maps).
    cache_size:
        LRU bound on memoized allocation problems.
    """

    def __init__(self, machine=None, cache_size: int = 4096) -> None:
        self.machine = machine
        self.stats = SolverStats()
        self._alloc = AllocationCache(maxsize=cache_size, stats=self.stats)
        self._capacities: dict[str, float] | None = None
        self._dma_paths: dict[tuple[int, int], float] = {}
        self._pio_streams: dict[tuple[int, int, int | None], float] = {}
        self._arena = None

    @property
    def fingerprint(self) -> str | None:
        """Topology fingerprint, or ``None`` for machine-less sessions."""
        return machine_fingerprint(self.machine) if self.machine is not None else None

    # --- capacities -------------------------------------------------------
    def _fabric_capacities(self) -> dict[str, float]:
        """The cached capacity map itself (not a copy — do not mutate)."""
        if self.machine is None:
            raise SimulationError(
                "this solver session has no machine; pass explicit capacities"
            )
        if self._capacities is None:
            with self.stats.phase("capacity"):
                if self._arena is not None:
                    # Arena-backed session: the capacity map was packed
                    # into shared memory by whoever published the arena;
                    # reading it back is the zero-copy fast path.
                    self._capacities = self._arena.capacities()
                else:
                    self._capacities = build_capacities(self.machine)
            self.stats.capacity_builds += 1
        else:
            self.stats.capacity_hits += 1
        return self._capacities

    def capacities(self) -> dict[str, float]:
        """A copy of the machine's fabric capacity map (safe to extend)."""
        return dict(self._fabric_capacities())

    # --- allocation -------------------------------------------------------
    def rates(
        self, flows: Iterable, capacities: Mapping[str, float] | None = None
    ) -> dict[str, float]:
        """Instantaneous max-min rates through the session's cache.

        ``capacities`` defaults to the machine's fabric map.
        """
        caps = capacities if capacities is not None else self._fabric_capacities()
        with self.stats.phase("allocate"):
            return self._alloc.rates(flows, caps)

    def rates_many(
        self,
        problems: Iterable[Iterable],
        capacities: Mapping[str, float] | None = None,
    ) -> list[dict[str, float]]:
        """Max-min rates for several flow lists under one ``allocate`` phase.

        The batched entry point for characterization sweeps: one stats
        phase and one capacity lookup cover the whole batch, and every
        problem still lands in (and reuses) the shared allocation cache.
        Results are returned in problem order.
        """
        caps = capacities if capacities is not None else self._fabric_capacities()
        with self.stats.phase("allocate"):
            return [self._alloc.rates(flows, caps) for flows in problems]

    def network(self, capacities: Mapping[str, float] | None = None) -> FlowNetwork:
        """A :class:`FlowNetwork` sharing this session's cache and stats."""
        caps = capacities if capacities is not None else self._fabric_capacities()
        return FlowNetwork(caps, allocator=self._alloc, stats=self.stats)

    def simulate(
        self, flows: Iterable, capacities: Mapping[str, float] | None = None
    ) -> dict[str, FlowOutcome]:
        """Time-domain simulation through the session's cache."""
        network = self.network(capacities)
        with self.stats.phase("simulate"):
            return network.simulate(flows)

    # --- memoized path models ---------------------------------------------
    def dma_path_gbps(self, src: int, dst: int) -> float:
        """Memoized :meth:`Machine.dma_path_gbps`."""
        if self.machine is None:
            raise SimulationError("this solver session has no machine")
        key = (src, dst)
        value = self._dma_paths.get(key)
        if value is None:
            value = self.machine.dma_path_gbps(src, dst)
            self._dma_paths[key] = value
            self.stats.path_misses += 1
        else:
            self.stats.path_hits += 1
        return value

    def pio_stream_gbps(
        self, cpu_node: int, mem_node: int, threads: int | None = None
    ) -> float:
        """Memoized :meth:`Machine.pio_stream_gbps`."""
        if self.machine is None:
            raise SimulationError("this solver session has no machine")
        key = (cpu_node, mem_node, threads)
        value = self._pio_streams.get(key)
        if value is None:
            value = self.machine.pio_stream_gbps(cpu_node, mem_node, threads)
            self._pio_streams[key] = value
            self.stats.path_misses += 1
        else:
            self.stats.path_hits += 1
        return value

    # --- lifecycle --------------------------------------------------------
    def attach_arena(self, arena) -> None:
        """Back this session's capacity map with a shared-memory arena.

        ``arena`` is duck-typed (the solver layer does not import
        :mod:`repro.fabric`): anything with ``acquire``/``release`` and
        a ``capacities()`` returning the machine's capacity map works.
        The session holds one reference until :meth:`close` (or a
        replacement arena) releases it.
        """
        if arena is self._arena:
            return
        arena.acquire()
        previous, self._arena = self._arena, arena
        self._capacities = None
        if previous is not None:
            previous.release()

    def close(self) -> None:
        """Release the arena reference (if any) and drop all caches.

        Called on LRU eviction from the session registry and by
        :func:`reset_sessions`, so an evicted session never pins a
        shared-memory segment.
        """
        arena, self._arena = self._arena, None
        self.invalidate()
        if arena is not None:
            arena.release()

    def invalidate(self) -> None:
        """Drop every cached answer (capacities, allocations, paths)."""
        self._capacities = None
        self._alloc.clear()
        self._dma_paths.clear()
        self._pio_streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = self.machine.name if self.machine is not None else "<ad-hoc>"
        return (
            f"SolverSession({name!r}, solves={self.stats.solves}, "
            f"hit_rate={self.stats.hit_rate:.1%})"
        )


def get_session(machine) -> SolverSession:
    """The process-wide session for ``machine``'s topology.

    Keyed by :func:`~repro.solver.capacity.machine_fingerprint`:
    structurally identical machines share one session; a machine edited
    through :mod:`repro.topology.modify` has a different fingerprint and
    gets a fresh session, so no caller ever sees stale capacities or
    routes after a what-if edit.
    """
    fingerprint = machine_fingerprint(machine)
    session = _SESSIONS.get(fingerprint)
    if session is None:
        session = SolverSession(machine)
        _SESSIONS[fingerprint] = session
        while len(_SESSIONS) > _MAX_SESSIONS:
            _fp, evicted = _SESSIONS.popitem(last=False)
            evicted.close()
    else:
        _SESSIONS.move_to_end(fingerprint)
    return session


def reset_sessions() -> None:
    """Drop every registered session (tests / CLI isolation).

    Closes each session on the way out so arena-backed sessions release
    their shared-memory references.
    """
    while _SESSIONS:
        _fp, session = _SESSIONS.popitem(last=False)
        session.close()


atexit.register(reset_sessions)
