"""Analysis layer: NUMA factors, topology inference, mismatch metrics.

These modules implement the paper's *arguments* — the quantitative
demonstrations in §I, §IV — as reusable analyses:

* :mod:`~repro.analysis.numa_factor` — Table I's latency ratios;
* :mod:`~repro.analysis.topology_inference` — the §IV-A negative result
  (hop distance cannot explain the STREAM matrix);
* :mod:`~repro.analysis.mismatch` — the §IV-B mismatch between STREAM
  models and I/O measurements, including the RDMA_READ rank reversal;
* :mod:`~repro.analysis.report` — text rendering of every paper table
  and figure series.
"""

from repro.analysis.baselines import (
    hop_distance_model,
    model_from_values,
    stream_cost_model,
)
from repro.analysis.mismatch import MismatchReport, mismatch_report
from repro.analysis.numa_factor import numa_factor, table1
from repro.analysis.planner import AttachmentScore, DeviceAttachmentPlanner
from repro.analysis.topology_inference import InferenceReport, infer_topology

__all__ = [
    "numa_factor",
    "table1",
    "InferenceReport",
    "infer_topology",
    "MismatchReport",
    "mismatch_report",
    "hop_distance_model",
    "stream_cost_model",
    "model_from_values",
    "AttachmentScore",
    "DeviceAttachmentPlanner",
]
