"""Simulated tasks and their NUMA bindings."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AffinityError
from repro.memory.policy import MemBinding

__all__ = ["TaskBinding", "SimTask"]


@dataclass(frozen=True)
class TaskBinding:
    """The NUMA affinity of one task: where it runs, where it allocates.

    ``cpu_node = None`` leaves the scheduler free; ``mem`` defaults to
    the kernel's local-preferred policy.
    """

    cpu_node: int | None = None
    mem: MemBinding = field(default_factory=MemBinding.local)

    @classmethod
    def on_node(cls, node: int) -> "TaskBinding":
        """``numactl --cpunodebind=<node>`` with default memory policy."""
        return cls(cpu_node=node)

    @classmethod
    def bound(cls, cpu_node: int, mem_node: int) -> "TaskBinding":
        """``numactl --cpunodebind=<cpu> --membind=<mem>``."""
        return cls(cpu_node=cpu_node, mem=MemBinding.bind(mem_node))


@dataclass
class SimTask:
    """A benchmark process/thread group.

    Parameters
    ----------
    name:
        Unique task name within one scheduler.
    threads:
        Worker threads; each occupies one core when scheduled.
    binding:
        NUMA affinity.
    """

    name: str
    threads: int = 1
    binding: TaskBinding = field(default_factory=TaskBinding)
    #: Set by the scheduler: core ids this task occupies.
    cores: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise AffinityError(f"task {self.name!r}: needs >= 1 thread")

    @property
    def scheduled(self) -> bool:
        """True once the scheduler has granted cores."""
        return bool(self.cores)
