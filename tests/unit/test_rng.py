"""Deterministic RNG registry."""

import numpy as np

from repro.rng import DEFAULT_SEED, RngRegistry


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("x").standard_normal(8)
        b = RngRegistry(42).stream("x").standard_normal(8)
        assert (a == b).all()

    def test_different_names_differ(self):
        r = RngRegistry(42)
        a = r.stream("x").standard_normal(8)
        b = r.stream("y").standard_normal(8)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").standard_normal(8)
        b = RngRegistry(2).stream("x").standard_normal(8)
        assert not (a == b).all()

    def test_request_order_irrelevant(self):
        r1 = RngRegistry(7)
        first_then_second = (r1.stream("a").random(), r1.stream("b").random())
        r2 = RngRegistry(7)
        second_then_first = (r2.stream("b").random(), r2.stream("a").random())
        assert first_then_second[0] == second_then_first[1]
        assert first_then_second[1] == second_then_first[0]

    def test_stream_restarts_at_origin(self):
        r = RngRegistry(3)
        assert r.stream("s").random() == r.stream("s").random()


class TestChildren:
    def test_child_independent_of_parent(self):
        r = RngRegistry(42)
        child = r.child("sub")
        a = r.stream("x").standard_normal(4)
        b = child.stream("x").standard_normal(4)
        assert not (a == b).all()

    def test_child_deterministic(self):
        a = RngRegistry(42).child("sub").stream("x").random()
        b = RngRegistry(42).child("sub").stream("x").random()
        assert a == b

    def test_seed_property(self):
        assert RngRegistry(99).seed == 99

    def test_default_seed_is_stable(self):
        # Recorded in EXPERIMENTS.md; a change invalidates recorded numbers.
        assert DEFAULT_SEED == 20130701


class TestStatistics:
    def test_streams_are_usable_generators(self):
        gen = RngRegistry().stream("stat")
        draws = gen.random(10000)
        assert 0.45 < float(np.mean(draws)) < 0.55
