"""Deterministic, named random-number streams.

The simulator is stochastic (run-to-run measurement jitter, OS noise,
multi-stream contention variability) but every experiment must be exactly
reproducible.  :class:`RngRegistry` derives one independent
:class:`numpy.random.Generator` per *named* purpose from a single root seed
using ``numpy``'s :class:`~numpy.random.SeedSequence` spawning, so

* adding a new consumer never perturbs existing streams, and
* the same (seed, name) pair always yields the same sequence.

Names are free-form strings, conventionally ``"<subsystem>/<detail>"``,
e.g. ``"bench/stream/cpu7-mem4/run13"``.

Streams are handed out wrapped in a :class:`CountingGenerator`, which
forwards every draw verbatim (sequences are bit-identical to the bare
generator) while accounting how many values each named stream produced.
Per-registry totals are readable via :attr:`RngRegistry.draw_counts`;
when a telemetry recorder is installed the counts also land in the
process metrics registry as ``rng.draws/<stream-name>`` — which is how
run manifests capture the seed registry state.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.obs import recorder as _obs

__all__ = ["RngRegistry", "CountingGenerator", "DEFAULT_SEED"]

#: Root seed used by every experiment unless overridden.  Chosen once and
#: recorded so EXPERIMENTS.md numbers are reproducible bit-for-bit.
DEFAULT_SEED = 20130701  # ICPP 2013 was held in July.


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name (crc32 is stable across runs)."""
    return zlib.crc32(name.encode("utf-8"))


def _draws(size) -> int:
    """Number of scalar values a ``size`` argument asks for."""
    if size is None:
        return 1
    if isinstance(size, (int, np.integer)):
        return int(size)
    out = 1
    for dim in size:
        out *= int(dim)
    return out


class CountingGenerator:
    """A :class:`numpy.random.Generator` proxy that accounts its draws.

    Forwards every method to the wrapped generator unchanged — the
    random sequence is identical to using the generator directly — and
    counts the values produced by the draw methods the library uses
    (``normal``, ``standard_normal``, ``uniform``, ``random``,
    ``integers``, ``exponential``, ``choice``).  Any other attribute is
    forwarded un-counted.
    """

    __slots__ = ("_gen", "_name", "_counts")

    def __init__(self, gen: np.random.Generator, name: str, counts: dict) -> None:
        self._gen = gen
        self._name = name
        self._counts = counts

    @property
    def stream_name(self) -> str:
        """The registry name this generator was derived for."""
        return self._name

    def _record(self, size) -> None:
        n = _draws(size)
        counts = self._counts
        counts[self._name] = counts.get(self._name, 0) + n
        if _obs._RECORDER is not None:
            _obs.count("rng.draws/" + self._name, n)

    # --- counted draw methods --------------------------------------------
    def normal(self, loc=0.0, scale=1.0, size=None):
        """Counted :meth:`numpy.random.Generator.normal`."""
        self._record(size)
        return self._gen.normal(loc, scale, size)

    def standard_normal(self, size=None, *args, **kwargs):
        """Counted :meth:`numpy.random.Generator.standard_normal`."""
        self._record(size)
        return self._gen.standard_normal(size, *args, **kwargs)

    def uniform(self, low=0.0, high=1.0, size=None):
        """Counted :meth:`numpy.random.Generator.uniform`."""
        self._record(size)
        return self._gen.uniform(low, high, size)

    def random(self, size=None, *args, **kwargs):
        """Counted :meth:`numpy.random.Generator.random`."""
        self._record(size)
        return self._gen.random(size, *args, **kwargs)

    def integers(self, low, high=None, size=None, *args, **kwargs):
        """Counted :meth:`numpy.random.Generator.integers`."""
        self._record(size)
        return self._gen.integers(low, high, size, *args, **kwargs)

    def exponential(self, scale=1.0, size=None):
        """Counted :meth:`numpy.random.Generator.exponential`."""
        self._record(size)
        return self._gen.exponential(scale, size)

    def choice(self, a, size=None, *args, **kwargs):
        """Counted :meth:`numpy.random.Generator.choice`."""
        self._record(size)
        return self._gen.choice(a, size, *args, **kwargs)

    def __getattr__(self, attr):
        return getattr(self._gen, attr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CountingGenerator({self._name!r})"


class RngRegistry:
    """Factory of independent named random generators.

    Parameters
    ----------
    seed:
        Root seed.  Two registries built with the same seed hand out
        identical streams for identical names, irrespective of request
        order.

    Examples
    --------
    >>> r = RngRegistry(7)
    >>> a = r.stream("noise/run0").standard_normal(3)
    >>> b = RngRegistry(7).stream("noise/run0").standard_normal(3)
    >>> bool((a == b).all())
    True
    >>> r.draw_counts
    {'noise/run0': 3}
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self._seed = int(seed)
        self._draws: dict[str, int] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry derives every stream from."""
        return self._seed

    @property
    def draw_counts(self) -> dict[str, int]:
        """Values drawn so far, per stream name (a copy, sorted by name)."""
        return {name: self._draws[name] for name in sorted(self._draws)}

    def stream(self, name: str) -> CountingGenerator:
        """Return a fresh generator for ``name``.

        Each call returns a *new* generator positioned at the start of the
        same underlying sequence, so callers that need to continue a
        sequence must hold on to the generator they were given.
        """
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(_name_key(name),))
        return CountingGenerator(
            np.random.Generator(np.random.PCG64(seq)), name, self._draws
        )

    def absorb(self, counts: "dict[str, int]") -> None:
        """Fold another registry's draw ledger into this one's counts.

        The merge half of sharded execution: a worker process draws from
        its own same-seed registry (streams are name-keyed and restart
        per :meth:`stream` call, so identical names yield bit-identical
        sequences), ships its :attr:`draw_counts` back, and the parent
        absorbs them here so the combined ledger matches a serial run.
        Counts only — no generator state crosses the process boundary.
        """
        draws = self._draws
        for name, n in counts.items():
            draws[name] = draws.get(name, 0) + int(n)

    def child(self, name: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's.

        Useful to give a sub-experiment its own namespace:
        ``registry.child("fig5").stream("tcp/run0")``.
        """
        return RngRegistry(self._seed ^ _name_key(name) ^ 0x9E3779B9)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self._seed})"
