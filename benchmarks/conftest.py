"""Benchmark harness configuration.

Each benchmark regenerates one paper artifact via the experiment
registry, asserts its shape checks, and prints the paper-vs-measured
rows (captured into bench_output.txt / EXPERIMENTS.md).  Experiments
are deterministic but not cheap, so every benchmark runs ``pedantic``
with one round.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.fixture()
def run_paper_experiment(benchmark):
    """Benchmark one experiment id and enforce its checks."""

    def _run(exp_id: str):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id), rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(result.render())
        failed = result.failed_checks()
        assert not failed, "\n".join(c.render() for c in failed)
        return result

    return _run
