"""fio job specifications, programmatic and ini-format.

The paper drives every I/O experiment through fio job descriptions
(Table III fixes the network defaults: 400 GB per process, 128 KiB
blocks, cubic TCP, 9000-byte frames).  :class:`FioJob` is the validated
programmatic form; :func:`parse_jobfile` accepts the familiar ini
syntax::

    [global]
    bs=128k
    size=400g

    [send-from-node5]
    ioengine=tcp
    rw=send
    numjobs=4
    cpunodebind=5
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.errors import BenchmarkError
from repro.units import GB, KiB

__all__ = [
    "FioJob",
    "parse_jobfile",
    "write_jobfile",
    "parse_size",
    "format_size",
    "NETWORK_TEST_DEFAULTS",
]

#: Table III: parameters for network I/O tests.
NETWORK_TEST_DEFAULTS = {
    "size_bytes": 400 * GB,
    "tcp_variant": "cubic",
    "blocksize": 128 * KiB,
    "frame_bytes": 9000,
}

#: Engine -> directions it accepts.
_ENGINE_DIRECTIONS = {
    "tcp": ("send", "recv"),
    "rdma": ("write", "read", "send"),
    "libaio": ("write", "read"),
    "memcpy": ("write", "read"),
}

#: Engine -> device slot it drives on the machine.
_ENGINE_DEVICE = {
    "tcp": "nic",
    "rdma": "nic",
    "libaio": "ssd",
    "memcpy": None,
}

_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)([kmgt]?)b?$", re.IGNORECASE)


def parse_size(text: str) -> int:
    """Parse fio-style sizes: ``128k``, ``400g``, ``4096``."""
    match = _SIZE_RE.match(text.strip())
    if not match:
        raise BenchmarkError(f"cannot parse size {text!r}")
    value = float(match.group(1))
    scale = {"": 1, "k": 1024, "m": 1024**2, "g": 1000**3, "t": 1000**4}[
        match.group(2).lower()
    ]
    return int(value * scale)


@dataclass(frozen=True)
class FioJob:
    """A validated fio job.

    Parameters
    ----------
    name:
        Job (and result) name.
    engine:
        ``tcp``, ``rdma``, ``libaio`` or ``memcpy``.
    rw:
        Direction, engine-dependent (see ``_ENGINE_DIRECTIONS``).  For
        network engines the convention follows the paper: ``send``/
        ``write`` move host data *to* the device (Table IV), ``recv``/
        ``read`` move device data to the host (Table V).
    numjobs:
        Concurrent streams/processes.
    cpunodebind:
        NUMA node the processes are pinned to (``None``: scheduler
        picks).  Buffers are allocated local-preferred from this node
        unless ``membind`` overrides.
    membind:
        Optional explicit buffer node.
    stream_nodes:
        Per-stream CPU nodes for *mixed* placements (the paper's Eq. 1
        validation runs two streams from node 2 and two from node 0).
        Length must equal ``numjobs``; overrides ``cpunodebind``.
    runtime_s:
        fio's ``time_based`` mode: run each stream for this many seconds
        instead of transferring ``size_bytes`` (which is then ignored).
    target_node:
        ``memcpy`` engine only: the device-attached node being
        characterised (Algorithm 1's ``k``).
    """

    name: str
    engine: str
    rw: str
    numjobs: int = 1
    blocksize: int = 128 * KiB
    iodepth: int = 16
    size_bytes: int = 400 * GB
    cpunodebind: int | None = None
    membind: int | None = None
    stream_nodes: tuple[int, ...] | None = None
    runtime_s: float | None = None
    device: str | None = None
    target_node: int | None = None
    tcp_variant: str = "cubic"
    frame_bytes: int = 9000
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.engine not in _ENGINE_DIRECTIONS:
            raise BenchmarkError(
                f"job {self.name!r}: unknown engine {self.engine!r}; "
                f"choose from {sorted(_ENGINE_DIRECTIONS)}"
            )
        if self.rw not in _ENGINE_DIRECTIONS[self.engine]:
            raise BenchmarkError(
                f"job {self.name!r}: engine {self.engine!r} does not support "
                f"rw={self.rw!r} (accepts {_ENGINE_DIRECTIONS[self.engine]})"
            )
        if self.numjobs < 1:
            raise BenchmarkError(
                f"job {self.name!r}: numjobs must be >= 1, got {self.numjobs}"
            )
        if self.blocksize <= 0:
            raise BenchmarkError(
                f"job {self.name!r}: blocksize must be positive, got {self.blocksize}"
            )
        if self.size_bytes <= 0:
            raise BenchmarkError(
                f"job {self.name!r}: size must be positive, got {self.size_bytes}"
            )
        if self.iodepth < 1:
            raise BenchmarkError(f"job {self.name!r}: iodepth must be >= 1")
        if self.size_bytes < self.blocksize:
            raise BenchmarkError(f"job {self.name!r}: size smaller than one block")
        if self.stream_nodes is not None and len(self.stream_nodes) != self.numjobs:
            raise BenchmarkError(
                f"job {self.name!r}: stream_nodes lists {len(self.stream_nodes)} "
                f"nodes for numjobs={self.numjobs}"
            )
        if self.runtime_s is not None and self.runtime_s <= 0:
            raise BenchmarkError(f"job {self.name!r}: runtime must be positive")
        if self.engine == "memcpy":
            if self.target_node is None:
                raise BenchmarkError(
                    f"job {self.name!r}: memcpy engine requires target_node"
                )
        elif self.device is None:
            object.__setattr__(self, "device", _ENGINE_DEVICE[self.engine])

    @property
    def profile_name(self) -> str:
        """The device engine-profile key this job drives."""
        if self.engine == "tcp":
            return f"tcp_{self.rw}"
        if self.engine == "rdma":
            return f"rdma_{self.rw}"
        if self.engine == "libaio":
            return f"libaio_{self.rw}"
        raise BenchmarkError(f"memcpy jobs have no device profile ({self.name!r})")

    @property
    def direction(self) -> str:
        """``write`` (host -> device) or ``read`` (device -> host)."""
        if self.engine == "tcp":
            return "write" if self.rw == "send" else "read"
        if self.rw == "send":
            return "write"
        return self.rw

    def with_node(self, node: int) -> "FioJob":
        """Copy of this job pinned to ``node`` (sweep helper)."""
        return replace(self, cpunodebind=node, name=f"{self.name}@n{node}")

    def with_numjobs(self, n: int) -> "FioJob":
        """Copy of this job with ``n`` streams (sweep helper)."""
        return replace(self, numjobs=n, name=f"{self.name}x{n}")


def parse_jobfile(text: str) -> list[FioJob]:
    """Parse an ini-style fio job file into :class:`FioJob` objects."""
    sections: list[tuple[str, dict[str, str]]] = []
    current: dict[str, str] | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            current = {}
            sections.append((line[1:-1].strip(), current))
            continue
        if current is None:
            raise BenchmarkError(f"job file: option {line!r} before any section")
        if "=" not in line:
            raise BenchmarkError(f"job file: cannot parse option {line!r}")
        key, value = (part.strip() for part in line.split("=", 1))
        current[key] = value

    global_opts: dict[str, str] = {}
    jobs: list[FioJob] = []
    for name, opts in sections:
        if name == "global":
            global_opts.update(opts)
            continue
        merged = {**global_opts, **opts}
        jobs.append(_job_from_options(name, merged))
    if not jobs:
        raise BenchmarkError("job file defines no jobs")
    return jobs


def format_size(n: int) -> str:
    """Render a byte count in fio's compact notation (inverse of
    :func:`parse_size` for exact multiples)."""
    if n % 1000**3 == 0 and n >= 1000**3:
        return f"{n // 1000**3}g"
    if n % 1024**2 == 0 and n >= 1024**2:
        return f"{n // 1024**2}m"
    if n % 1024 == 0 and n >= 1024:
        return f"{n // 1024}k"
    return str(n)


def write_jobfile(jobs: list[FioJob]) -> str:
    """Render jobs back to ini text (round-trips through
    :func:`parse_jobfile`)."""
    if not jobs:
        raise BenchmarkError("no jobs to write")
    sections = []
    for job in jobs:
        lines = [f"[{job.name}]"]
        lines.append(f"ioengine={job.engine}")
        lines.append(f"rw={job.rw}")
        lines.append(f"numjobs={job.numjobs}")
        lines.append(f"bs={format_size(job.blocksize)}")
        lines.append(f"iodepth={job.iodepth}")
        lines.append(f"size={format_size(job.size_bytes)}")
        if job.runtime_s is not None:
            lines.append(f"runtime={job.runtime_s:g}")
        if job.cpunodebind is not None:
            lines.append(f"cpunodebind={job.cpunodebind}")
        if job.membind is not None:
            lines.append(f"membind={job.membind}")
        if job.device is not None and job.engine != "memcpy":
            lines.append(f"device={job.device}")
        if job.target_node is not None:
            lines.append(f"target_node={job.target_node}")
        for key, value in sorted(job.extra.items()):
            lines.append(f"{key}={value}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"


#: fio options this model does not interpret but accepts and carries in
#: ``FioJob.extra`` (they are meaningful to real fio and round-trip
#: through :func:`write_jobfile`).  Anything else is a typo and rejected.
_PASSTHROUGH_KEYS = frozenset({
    "direct",
    "directory",
    "filename",
    "group_reporting",
    "invalidate",
    "ramp_time",
    "startdelay",
    "thread",
    "time_based",
    "verify",
})


def _int_option(name: str, key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise BenchmarkError(
            f"job {name!r}: option {key}={value!r} is not an integer"
        ) from exc


def _float_option(name: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError as exc:
        raise BenchmarkError(
            f"job {name!r}: option {key}={value!r} is not a number"
        ) from exc


def _size_option(name: str, key: str, value: str) -> int:
    try:
        return parse_size(value)
    except BenchmarkError as exc:
        raise BenchmarkError(f"job {name!r}: option {key}: {exc}") from exc


def _job_from_options(name: str, opts: dict[str, str]) -> FioJob:
    known: dict = {"name": name}
    for key, value in opts.items():
        if key == "ioengine":
            known["engine"] = value
        elif key == "rw":
            known["rw"] = value
        elif key == "numjobs":
            known["numjobs"] = _int_option(name, key, value)
        elif key == "bs":
            known["blocksize"] = _size_option(name, key, value)
        elif key == "iodepth":
            known["iodepth"] = _int_option(name, key, value)
        elif key == "size":
            known["size_bytes"] = _size_option(name, key, value)
        elif key == "runtime":
            known["runtime_s"] = _float_option(name, key, value)
        elif key == "cpunodebind":
            known["cpunodebind"] = _int_option(name, key, value)
        elif key == "membind":
            known["membind"] = _int_option(name, key, value)
        elif key == "device":
            known["device"] = value
        elif key == "target_node":
            known["target_node"] = _int_option(name, key, value)
        elif key in _PASSTHROUGH_KEYS:
            known.setdefault("extra", {})[key] = value
        else:
            raise BenchmarkError(
                f"job {name!r}: unknown option {key!r} "
                f"(pass-through keys are {sorted(_PASSTHROUGH_KEYS)})"
            )
    if "engine" not in known or "rw" not in known:
        raise BenchmarkError(f"job {name!r}: ioengine and rw are required")
    return FioJob(**known)
