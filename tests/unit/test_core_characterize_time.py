"""Probe-time accounting."""

import pytest

from repro.core.characterize import HostCharacterizer
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def characterization(host):
    return HostCharacterizer(host, registry=RngRegistry(), runs=10).characterize(7)


class TestTimeEstimate:
    def test_model_probing_is_dramatically_cheaper(self, characterization):
        estimate = characterization.time_estimate()
        # "without ... costly I/O benchmarking process": the model itself
        # costs seconds against hours of exhaustive fio.
        assert estimate.memcpy_probe_s < 120
        assert estimate.exhaustive_fio_s > 3600
        assert estimate.speedup > 2.0

    def test_reduced_includes_validation(self, characterization):
        estimate = characterization.time_estimate()
        assert estimate.reduced_total_s == pytest.approx(
            estimate.memcpy_probe_s + estimate.representative_fio_s
        )

    def test_scales_with_transfer_size(self, characterization):
        small = characterization.time_estimate(gb_per_stream=40.0)
        big = characterization.time_estimate(gb_per_stream=400.0)
        assert big.exhaustive_fio_s == pytest.approx(10 * small.exhaustive_fio_s)
        assert big.memcpy_probe_s == small.memcpy_probe_s  # model cost unchanged

    def test_render(self, characterization):
        text = characterization.time_estimate().render()
        assert "x less benchmarking time" in text
