"""Whole-host characterisation and probe-cost accounting.

§V-B's first application: "instead of benchmarking all possible
combinations, we can examine only one node from each class."  The
characterizer builds the memcpy models for every node that has devices
(or any requested set), and accounts how many benchmark configurations
the class structure saves relative to exhaustive probing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.iomodel import IOModelBuilder
from repro.core.model import IOPerformanceModel
from repro.errors import ModelError
from repro.obs import recorder as _obs
from repro.rng import RngRegistry
from repro.topology.machine import Machine
from repro.units import GB, MiB

__all__ = ["HostCharacterization", "HostCharacterizer", "ProbeTimeEstimate"]


@dataclass(frozen=True)
class ProbeTimeEstimate:
    """Wall-clock cost of characterisation, with and without the model.

    The paper claims the methodology can "dramatically reduce
    characterization workload"; counting configurations (the 50 % cut)
    understates it, because an I/O probe moves 400 GB per stream while a
    memcpy probe moves megabytes.  All times are estimates from the
    measured rates themselves.
    """

    exhaustive_fio_s: float  # benchmark every node with real I/O
    memcpy_probe_s: float  # run Algorithm 1 instead
    representative_fio_s: float  # then validate one node per class
    n_operations: int  # I/O operations the exhaustive plan covers

    @property
    def reduced_total_s(self) -> float:
        """Model build plus representative validation."""
        return self.memcpy_probe_s + self.representative_fio_s

    @property
    def speedup(self) -> float:
        """Exhaustive cost over reduced cost."""
        return self.exhaustive_fio_s / self.reduced_total_s

    def render(self) -> str:
        """Summary lines."""
        return (
            f"exhaustive I/O benchmarking (~{self.n_operations} operations x "
            f"every node): ~{self.exhaustive_fio_s / 3600:.1f} h\n"
            f"memcpy model ({self.memcpy_probe_s:.0f} s) + representative "
            f"validation (~{self.representative_fio_s / 3600:.1f} h): "
            f"~{self.reduced_total_s / 3600:.1f} h total "
            f"-> {self.speedup:.1f}x less benchmarking time"
        )


@dataclass(frozen=True)
class HostCharacterization:
    """Models for one target node, with cost accounting."""

    machine_name: str
    target_node: int
    write_model: IOPerformanceModel
    read_model: IOPerformanceModel

    @property
    def exhaustive_probes(self) -> int:
        """I/O benchmark configurations without the model (both modes)."""
        return 2 * len(self.write_model.values)

    @property
    def reduced_probes(self) -> int:
        """Configurations with one representative per class (both modes)."""
        return self.write_model.n_classes + self.read_model.n_classes

    @property
    def cost_reduction(self) -> float:
        """Fraction of I/O benchmark work saved (paper: 50 % for reads)."""
        return 1.0 - self.reduced_probes / self.exhaustive_probes

    def time_estimate(
        self,
        n_operations: int = 3,
        gb_per_stream: float = 400.0,
        streams: int = 4,
        nominal_io_gbps: float = 20.0,
        memcpy_runs: int = 100,
        buffer_bytes: int = 64 * MiB,
    ) -> ProbeTimeEstimate:
        """Wall-clock comparison of exhaustive vs model-driven probing.

        Assumptions are the paper's own protocol: each I/O probe moves
        ``gb_per_stream`` GB per stream over ``streams`` streams (Table
        III) at a ``nominal_io_gbps`` aggregate; each Algorithm 1 probe
        copies ``memcpy_runs`` buffers per thread at the rate the model
        itself measured.
        """
        n_nodes = len(self.write_model.values)
        fio_probe_s = streams * gb_per_stream * GB * 8 / (nominal_io_gbps * 1e9)
        exhaustive = n_operations * 2 * n_nodes * fio_probe_s
        threads = self.write_model.threads
        memcpy_total = 0.0
        for model in (self.write_model, self.read_model):
            for value in model.values.values():
                bits = memcpy_runs * threads * buffer_bytes * 8
                memcpy_total += bits / (value * 1e9)
        representative = n_operations * self.reduced_probes * fio_probe_s
        return ProbeTimeEstimate(
            exhaustive_fio_s=exhaustive,
            memcpy_probe_s=memcpy_total,
            representative_fio_s=representative,
            n_operations=n_operations,
        )

    def render(self) -> str:
        """Both models plus the savings summary."""
        return "\n\n".join(
            [
                self.write_model.render(),
                self.read_model.render(),
                (
                    f"Probe cost: {self.reduced_probes} representative "
                    f"configurations instead of {self.exhaustive_probes} "
                    f"({100 * self.cost_reduction:.0f} % saved)"
                ),
                self.time_estimate().render(),
            ]
        )


class HostCharacterizer:
    """Run Algorithm 1 against one machine, any target set."""

    def __init__(
        self,
        machine: Machine,
        registry: RngRegistry | None = None,
        **builder_kwargs,
    ) -> None:
        self.machine = machine
        self.builder = IOModelBuilder(
            machine, registry=registry or RngRegistry(), **builder_kwargs
        )

    def device_nodes(self) -> tuple[int, ...]:
        """Nodes with at least one attached device."""
        return tuple(sorted({d.node_id for d in self.machine.devices.values()}))

    def characterize(self, target_node: int) -> HostCharacterization:
        """Write+read models for ``target_node``."""
        return self.characterize_many((target_node,))[target_node]

    def characterize_many(
        self, nodes: "tuple[int, ...] | list[int]"
    ) -> dict[int, HostCharacterization]:
        """Write+read models for several targets in one vectorized sweep.

        All targets' capacity probes go through the solver session in
        one batch per mode (:meth:`IOModelBuilder.build_many`); results
        are identical to characterising the nodes one by one.
        """
        targets = tuple(nodes)
        with _obs.span("characterize.many", targets=len(targets)):
            write_models = self.builder.build_many(targets, "write")
            read_models = self.builder.build_many(targets, "read")
        return {
            node: HostCharacterization(
                machine_name=self.machine.name,
                target_node=node,
                write_model=write_models[node],
                read_model=read_models[node],
            )
            for node in targets
        }

    def characterize_devices(self) -> dict[int, HostCharacterization]:
        """Characterise every device-attached node (one batched sweep)."""
        nodes = self.device_nodes()
        if not nodes:
            raise ModelError(
                f"machine {self.machine.name!r} has no devices to characterise"
            )
        return self.characterize_many(nodes)
