"""PCIe link description."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.units import pcie_data_gbps

__all__ = ["PcieLink"]


@dataclass(frozen=True)
class PcieLink:
    """A PCIe attachment: generation and lane count.

    The paper's NIC sits on Gen 2 x8: 40 Gbps raw, 32 Gbps after the
    8b/10b encoding — the hard ceiling it quotes when arguing its 25 Gbps
    TCP peak is "very close to the theoretical performance limit".
    """

    gen: int = 2
    lanes: int = 8

    def __post_init__(self) -> None:
        if self.lanes not in (1, 2, 4, 8, 16, 32):
            raise DeviceError(f"invalid PCIe lane count {self.lanes!r}")
        # Delegate generation validation (raises ValueError on bad gen).
        try:
            pcie_data_gbps(self.lanes, self.gen)
        except ValueError as exc:
            raise DeviceError(str(exc)) from exc

    @property
    def raw_gbps(self) -> float:
        """Wire rate before encoding overhead."""
        per_lane = {1: 2.5, 2: 5.0, 3: 8.0}[self.gen]
        return self.lanes * per_lane

    @property
    def data_gbps(self) -> float:
        """Usable data bandwidth after encoding overhead."""
        return pcie_data_gbps(self.lanes, self.gen)

    def __str__(self) -> str:
        return f"PCIe Gen{self.gen} x{self.lanes} ({self.data_gbps:.1f} Gbps data)"
