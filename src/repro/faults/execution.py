"""Execution-layer faults: crashes of the run itself, not of the host.

The taxonomy in :mod:`repro.faults.events` models what goes wrong *on*
the simulated NUMA host (links, controllers, devices).  This module
models what goes wrong *around* the run: the driver process dies
mid-append, a journal record is cut in half on disk, a pool worker
stalls.  These faults have no capacity footprint — they are injected
through the environment of the process under test, and the
crash-recovery soak (``repro-numa recover``,
``scripts/recovery_smoke.sh``) uses them to prove the journal's resume
contract holds at seeded, reproducible kill points.

Each fault's :meth:`~ExecutionFault.env` returns the ``(name, value)``
environment pair that arms it:

* :class:`CrashPoint` — SIGKILL immediately **after** the Nth journal
  data record is fully written and fsynced (the unit is durable; resume
  must skip it);
* :class:`TornWrite` — SIGKILL **halfway through** writing the Nth data
  record (the tail is torn; resume must truncate and re-run the unit);
* :class:`WorkerStall` — a fabric pool worker sleeps before its first
  task, modelling a wedged worker that the pool's lost-shard retry and
  the journal's unit granularity must absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultError
from repro.faults.events import Fault
from repro.journal.store import CRASH_ENV

__all__ = ["ExecutionFault", "CrashPoint", "TornWrite", "WorkerStall", "STALL_ENV"]

#: Environment variable armed by :class:`WorkerStall`; read by
#: ``repro.fabric.pool`` workers (kept as a literal there so importing
#: the pool does not pull in the fault taxonomy).
STALL_ENV = "REPRO_FABRIC_STALL"


@dataclass(frozen=True)
class ExecutionFault(Fault):
    """Base class for faults injected into the run's own processes."""

    kind = "execution"

    def capacity_factors(self) -> dict[str, float]:
        raise FaultError(
            f"{self.kind} is an execution-layer fault; it has no capacity "
            "footprint — arm it through the environment via env()"
        )

    def env(self) -> tuple[str, str]:
        """The ``(variable, value)`` pair that arms this fault."""
        raise NotImplementedError


def _check_record(record: int, what: str) -> None:
    if record < 1:
        raise FaultError(f"{what} record index must be >= 1, got {record!r}")


@dataclass(frozen=True)
class CrashPoint(ExecutionFault):
    """SIGKILL the run right after journal data record ``record`` lands.

    The record is complete and fsynced when the process dies, so resume
    must find it intact, skip its unit, and re-run only the rest.
    """

    record: int

    kind = "crash-point"

    def __post_init__(self) -> None:
        _check_record(self.record, "crash point")

    def env(self) -> tuple[str, str]:
        return CRASH_ENV, str(self.record)

    def describe(self) -> str:
        return f"crash@{self.record}"


@dataclass(frozen=True)
class TornWrite(ExecutionFault):
    """SIGKILL the run halfway through writing data record ``record``.

    The journal tail is left torn — a record header or payload cut
    short — which resume must detect, truncate, and re-run, never
    mistaking it for corruption of a complete record.
    """

    record: int

    kind = "torn-write"

    def __post_init__(self) -> None:
        _check_record(self.record, "torn write")

    def env(self) -> tuple[str, str]:
        return CRASH_ENV, f"{self.record}:torn"

    def describe(self) -> str:
        return f"torn@{self.record}"


@dataclass(frozen=True)
class WorkerStall(ExecutionFault):
    """A fabric pool worker sleeps ``seconds`` before its first task.

    Models a wedged worker (page-cache stall, NUMA balancing hiccup):
    results still arrive, late, and journaled runs must remain
    byte-identical because completion order never affects merge order.
    """

    seconds: float

    kind = "worker-stall"

    def __post_init__(self) -> None:
        if not 0.0 < self.seconds <= 60.0:
            raise FaultError(
                f"worker stall must be in (0, 60] seconds, got {self.seconds!r}"
            )

    def env(self) -> tuple[str, str]:
        return STALL_ENV, f"{self.seconds:g}"

    def describe(self) -> str:
        return f"stall:{self.seconds:g}s"
