"""F6 — Fig. 6: RDMA_WRITE / RDMA_READ bandwidth per NUMA binding.

Shape facts (§IV-B2): RDMA is markedly more stable than TCP (offloaded
protocol processing); RDMA_WRITE follows the write-model classes with
classes 1 and 2 nearly identical; RDMA_READ *reverses* the STREAM
ordering — nodes {0,1} measure 15-18.4 % below {2,3}.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.mismatch import group_ratio
from repro.analysis.report import render_series
from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.experiments.common import check, default_machine, default_registry
from repro.experiments.registry import ExperimentResult

TITLE = "Fig. 6: RDMA bandwidth vs streams and NUMA binding"

STREAM_COUNTS = (1, 2, 4, 8, 16)


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """RDMA write/read grids plus the rank-reversal check."""
    m = default_machine(machine)
    runner = FioRunner(m, registry=default_registry(registry))
    counts = (1, 2, 4) if quick else STREAM_COUNTS

    grids = {}
    for engine, rw in (("rdma", "write"), ("rdma", "read"), ("tcp", "send")):
        base = FioJob(name=f"fig6-{engine}-{rw}", engine=engine, rw=rw, numjobs=1)
        grid = runner.grid(base, counts=counts)
        grids[f"{engine}_{rw}"] = {
            node: {n: res.aggregate_gbps for n, res in per_count.items()}
            for node, per_count in grid.items()
        }
    write, read = grids["rdma_write"], grids["rdma_read"]
    tcp = grids["tcp_send"]

    # Stability: relative spread across stream counts, per node.
    def spread(curves: dict[int, dict[int, float]]) -> float:
        rels = []
        for node, curve in curves.items():
            vals = [curve[c] for c in counts if c >= 2]
            if len(vals) < 2:
                vals = [curve[c] for c in counts]
            rels.append((max(vals) - min(vals)) / max(vals))
        return float(np.mean(rels))

    at = 4 if 4 in counts else counts[-1]
    read_sweep = {n: read[n][at] for n in m.node_ids}
    ratio = group_ratio(read_sweep, (0, 1), (2, 3))
    deficit = 1.0 - ratio  # paper: 15 - 18.4 %

    write_c1 = np.mean([write[n][at] for n in (6, 7)])
    write_c2 = np.mean([write[n][at] for n in (0, 1, 4, 5)])
    write_c3 = np.mean([write[n][at] for n in (2, 3)])

    rdma_spread = max(spread(write), spread(read))
    checks = (
        check("RDMA markedly stabler than TCP (the paper's claim)",
              rdma_spread < 0.12 and rdma_spread < 0.5 * spread(tcp),
              f"rdma {100 * rdma_spread:.1f} % vs tcp {100 * spread(tcp):.1f} %"),
        check("RDMA_WRITE: classes 1 and 2 nearly identical (within 6 %)",
              abs(write_c1 - write_c2) / write_c1 < 0.06,
              f"{write_c1:.1f} vs {write_c2:.1f} Gbps"),
        check("RDMA_WRITE: class 3 ({2,3}) well below (>20 %)",
              write_c3 < 0.8 * write_c2,
              f"{write_c3:.1f} vs {write_c2:.1f} Gbps"),
        check("RDMA_READ reversal: {0,1} 15-18.4 % below {2,3}",
              0.10 <= deficit <= 0.25,
              f"measured deficit {100 * deficit:.1f} %"),
    )
    text = "\n\n".join(
        [
            render_series("(a) RDMA_WRITE", write),
            render_series("(b) RDMA_READ", read),
        ]
    )
    return ExperimentResult(
        exp_id="f6", title=TITLE, text=text,
        data={"write": write, "read": read}, checks=checks,
    )
