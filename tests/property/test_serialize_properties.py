"""Serialisation round-trips on machines the calibration never saw."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.planes import PLANE_DMA, PLANE_PIO
from repro.topology.builders import parametric_machine
from repro.topology.serialize import machine_from_dict, machine_to_dict

machines = st.builds(
    parametric_machine,
    n_packages=st.integers(min_value=1, max_value=5),
    nodes_per_package=st.integers(min_value=1, max_value=3),
    cores_per_node=st.integers(min_value=1, max_value=4),
    width_bits=st.sampled_from([8, 16]),
    gts=st.sampled_from([2.6, 3.2, 6.4]),
    chords=st.integers(min_value=0, max_value=2),
)


@given(machines)
@settings(max_examples=50, deadline=None)
def test_roundtrip_preserves_structure(machine):
    rebuilt = machine_from_dict(json.loads(json.dumps(machine_to_dict(machine))))
    assert rebuilt.name == machine.name
    assert rebuilt.node_ids == machine.node_ids
    assert rebuilt.links.keys() == machine.links.keys()
    assert rebuilt.params == machine.params
    for nid in machine.node_ids:
        assert rebuilt.node(nid) == machine.node(nid)


@given(machines)
@settings(max_examples=50, deadline=None)
def test_roundtrip_preserves_behaviour(machine):
    rebuilt = machine_from_dict(machine_to_dict(machine))
    for src in machine.node_ids:
        for dst in machine.node_ids:
            assert rebuilt.dma_path_gbps(src, dst) == machine.dma_path_gbps(src, dst)
            for plane in (PLANE_PIO, PLANE_DMA):
                assert (rebuilt.routing.route(plane, src, dst)
                        == machine.routing.route(plane, src, dst))


@given(machines)
@settings(max_examples=50, deadline=None)
def test_double_roundtrip_is_identity(machine):
    once = machine_to_dict(machine)
    twice = machine_to_dict(machine_from_dict(once))
    assert once == twice
