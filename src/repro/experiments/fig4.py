"""F4 — Fig. 4: CPU-centric and memory-centric STREAM models of node 7.

Plus the §IV-B2 quantitative claim: in the CPU-centric model, nodes
{0,1} outperform {2,3} by 43-88 %.
"""

from __future__ import annotations

from repro.analysis.mismatch import group_ratio
from repro.analysis.report import render_node_sweep
from repro.bench.stream import StreamBenchmark
from repro.experiments import paper_values
from repro.experiments.common import IO_NODE, check, default_machine, default_registry
from repro.experiments.registry import ExperimentResult

TITLE = "Fig. 4: STREAM CPU-centric and memory-centric models of node 7"


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Row/column 7 of the STREAM matrix plus the {0,1}/{2,3} ratios."""
    m = default_machine(machine)
    bench = StreamBenchmark(m, registry=default_registry(registry),
                            runs=10 if quick else 100)
    cpu_centric = bench.cpu_centric(IO_NODE)
    memory_centric = bench.memory_centric(IO_NODE)

    facts = paper_values.STREAM_FACTS
    ratios = [
        cpu_centric[a] / cpu_centric[b] for a in (0, 1) for b in (2, 3)
    ]
    lo, hi = facts["ratio_01_over_23_min"], facts["ratio_01_over_23_max"]
    # Allow a small margin around the paper's [1.43, 1.88] band.
    in_band = all(lo * 0.93 <= r <= hi * 1.07 for r in ratios)

    checks = (
        check("CPU-centric: {0,1} beat {2,3} by 43-88 %", in_band,
              f"pairwise ratios {[round(r, 2) for r in ratios]}"),
        check("memory-centric: {0,1} beat {2,3}",
              group_ratio(memory_centric, (0, 1), (2, 3)) > 1.0),
        check("memory-centric: node 4 is the worst non-class-1 node",
              min(((n, v) for n, v in memory_centric.items() if n not in (6, 7)),
                  key=lambda kv: kv[1])[0] == 4),
        check("both models: local best, neighbour second",
              cpu_centric[7] > cpu_centric[6] > max(cpu_centric[n] for n in range(6))
              and memory_centric[7] > memory_centric[6]
              > max(memory_centric[n] for n in range(6))),
    )
    text = "\n\n".join(
        [
            render_node_sweep("(a) CPU centric: STREAM on node 7, data on node N",
                              cpu_centric),
            render_node_sweep("(b) memory centric: data on node 7, STREAM on node N",
                              memory_centric),
        ]
    )
    return ExperimentResult(
        exp_id="f4",
        title=TITLE,
        text=text,
        data={"cpu_centric": cpu_centric, "memory_centric": memory_centric},
        checks=checks,
    )
