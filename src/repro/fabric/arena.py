"""Shared-memory arenas: one machine's solver matrices, mapped not pickled.

A :class:`MachineArena` packs everything a worker process needs to
reconstruct a machine's solver state into one POSIX shared-memory
segment keyed by :func:`~repro.solver.capacity.machine_fingerprint`:

* the canonical machine description (JSON, for reconstruction),
* the fabric **capacity values** (float64, names in the header),
* the **hop matrix** (int64, N x N),
* the DMA **adjacency matrix** (float64, N x N link Gbps).

Segment layout: an 8-byte little-endian header length, the UTF-8 JSON
header, then the arrays back to back at 16-byte aligned offsets in
header-declared order.  Offsets are recomputed by the reader from the
shapes, so the header never has to describe its own size.

The attach-by-fingerprint protocol (:func:`get_arena`): attach the
segment if some process already published it, build and publish it
otherwise, racing publishers falling back to attach.  Every holder —
sessions, pools, worker caches — takes a reference
(:meth:`MachineArena.acquire`) and releases it when done; the last
release closes the mapping, and the publishing process additionally
unlinks the segment.  An :mod:`atexit` sweep force-closes anything
still open so a normal interpreter exit never leaks ``/dev/shm``
segments; a SIGKILLed *worker* cannot leak either, because workers only
ever attach (the parent owns the unlink).

Routing overrides are deliberately rejected: they are not part of the
canonical serialized form, so a worker could not reproduce the parent's
routes.  Callers fall back to shipping such machines whole.
"""

from __future__ import annotations

import atexit
import json
import os
import struct
import time
import zlib

import numpy as np

from repro.errors import FabricError
from repro.solver.capacity import build_capacities, machine_fingerprint
from repro.topology.distance import hop_matrix
from repro.topology.machine import Machine
from repro.topology.serialize import machine_from_dict, machine_to_dict

__all__ = [
    "MachineArena",
    "segment_name",
    "publish",
    "attach",
    "get_arena",
    "release_all",
    "live_segments",
    "reap_orphans",
]

#: Prefix of every arena segment in /dev/shm (also the leak-scan key).
SEGMENT_PREFIX = "repro_fab_"

_MAGIC = "repro-fabric-arena"
_VERSION = 1
_ALIGN = 16

#: Process-local arena registry: fingerprint -> MachineArena.
_ARENAS: "dict[str, MachineArena]" = {}


def segment_name(fingerprint: str) -> str:
    """The shared-memory segment name for a machine fingerprint."""
    return SEGMENT_PREFIX + fingerprint[:32]


def _shared_memory():
    """The stdlib module, imported lazily so sandboxes without POSIX
    shared memory fail at use, not import."""
    from multiprocessing import shared_memory

    return shared_memory


class _untracked:
    """Suppress resource-tracker registration while attaching.

    Python registers every ``SharedMemory`` attachment with the
    :mod:`multiprocessing.resource_tracker`, which *unlinks* tracked
    segments when the registering process exits — correct for owners,
    destructive for attachers sharing a segment with a still-running
    parent.  (Python 3.13's ``track=False`` is this, spelled properly.)
    Registration is suppressed rather than undone after the fact: forked
    workers share one tracker process whose cache is a *set*, so N
    register + N unregister messages for one segment underflow it and
    the tracker prints KeyErrors at exit.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker

        self._module = resource_tracker
        self._original = resource_tracker.register

        def _skip_shared_memory(name, rtype):
            if rtype != "shared_memory":
                self._original(name, rtype)

        resource_tracker.register = _skip_shared_memory
        self._original_unregister = resource_tracker.unregister

        def _skip_unregister(name, rtype):
            if rtype != "shared_memory":
                self._original_unregister(name, rtype)

        # unlink() unregisters; for a segment this process never
        # registered (orphan reaping) that underflows the tracker's
        # cache and it prints KeyErrors at exit.
        resource_tracker.unregister = _skip_unregister
        return self

    def __exit__(self, *exc) -> bool:
        self._module.register = self._original
        self._module.unregister = self._original_unregister
        return False


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack_header(machine: Machine, fingerprint: str) -> "tuple[dict, list]":
    """The header dict plus the arrays to pack, in declared order."""
    capacities = build_capacities(machine)
    cap_names = list(capacities)
    cap_values = np.asarray([capacities[name] for name in cap_names], dtype=np.float64)
    hops = hop_matrix(machine).astype(np.int64, copy=False)
    ids = machine.node_ids
    index = {nid: i for i, nid in enumerate(ids)}
    adjacency = np.zeros((len(ids), len(ids)), dtype=np.float64)
    for (src, dst), link in machine.links.items():
        adjacency[index[src], index[dst]] = link.dma_gbps
    arrays = [
        ("cap_values", cap_values),
        ("hops", hops),
        ("adjacency", adjacency),
    ]
    payload_crc = 0
    for _, arr in arrays:
        payload_crc = zlib.crc32(arr.tobytes(), payload_crc)
    header = {
        "magic": _MAGIC,
        "version": _VERSION,
        "fingerprint": fingerprint,
        "machine": machine_to_dict(machine),
        "cap_names": cap_names,
        # Publisher identity + integrity: pid lets a later process tell
        # an orphaned segment from a live one (reap_orphans); the CRC
        # over the packed arrays is re-verified on every attach.
        "pid": os.getpid(),
        "payload_crc": payload_crc,
        "arrays": [
            {"name": name, "dtype": str(arr.dtype), "shape": list(arr.shape)}
            for name, arr in arrays
        ],
    }
    return header, arrays


class MachineArena:
    """One machine's solver matrices in a shared-memory segment.

    Constructed via :func:`publish` / :func:`attach` / :func:`get_arena`,
    never directly.  All array properties are zero-copy views into the
    segment; treat them (and the shared :meth:`capacities` dict) as
    read-only.
    """

    def __init__(self, shm, header: dict, offsets: "dict[str, int]",
                 owner: bool) -> None:
        self._shm = shm
        self._header = header
        self._offsets = offsets
        self.owner = owner
        self.refs = 0
        self.closed = False
        self._machine: Machine | None = None
        self._capacities: dict[str, float] | None = None

    # --- identity ---------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The machine fingerprint this arena was published under."""
        return self._header["fingerprint"]

    @property
    def name(self) -> str:
        """The shared-memory segment name."""
        return self._shm.name

    # --- views ------------------------------------------------------------
    def _array(self, name: str) -> np.ndarray:
        for spec in self._header["arrays"]:
            if spec["name"] == name:
                arr = np.ndarray(
                    tuple(spec["shape"]),
                    dtype=np.dtype(spec["dtype"]),
                    buffer=self._shm.buf,
                    offset=self._offsets[name],
                )
                arr.flags.writeable = False
                return arr
        raise FabricError(f"arena {self.name} has no array {name!r}")

    @property
    def hops(self) -> np.ndarray:
        """The N x N hop matrix (int64 view into the segment)."""
        return self._array("hops")

    @property
    def adjacency(self) -> np.ndarray:
        """The N x N DMA link-capacity matrix (float64 view)."""
        return self._array("adjacency")

    def capacities(self) -> "dict[str, float]":
        """The fabric capacity map, built once from the shared values.

        Shared across every session attached to this arena — callers
        must not mutate it (:meth:`SolverSession.capacities` copies).
        """
        if self._capacities is None:
            values = self._array("cap_values")
            self._capacities = dict(
                zip(self._header["cap_names"], values.tolist())
            )
        return self._capacities

    def machine(self) -> Machine:
        """The machine reconstructed from the arena's description.

        The reconstruction is cached, stamped with the published
        fingerprint (skipping re-serialization), and seeded with the
        shared hop matrix so distance consumers never recompute the
        BFS sweep in a worker.
        """
        if self._machine is None:
            machine = machine_from_dict(self._header["machine"])
            try:
                machine._solver_fingerprint = self.fingerprint
                machine._hop_matrix_cache = self.hops
            except AttributeError:  # pragma: no cover - exotic subclasses
                pass
            self._machine = machine
        return self._machine

    # --- lifecycle --------------------------------------------------------
    def acquire(self) -> "MachineArena":
        """Take a reference; every holder pairs this with :meth:`release`."""
        if self.closed:
            raise FabricError(f"arena {self.name} is closed")
        self.refs += 1
        return self

    def release(self) -> None:
        """Drop a reference; the last one closes (and owner-unlinks)."""
        if self.closed:
            return
        self.refs -= 1
        if self.refs <= 0:
            self._close()

    def _close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._machine = None
        self._capacities = None
        _ARENAS.pop(self.fingerprint, None)
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - exported views
            pass
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass  # another owner (or the tracker) got there first
            except OSError:  # pragma: no cover - platform quirk
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "owner" if self.owner else "attached"
        return (
            f"MachineArena({self.fingerprint[:12]}, {role}, refs={self.refs})"
        )


def _offsets_for(header: dict, header_len: int) -> "dict[str, int]":
    """Array offsets implied by the header (reader and writer agree)."""
    offsets: dict[str, int] = {}
    cursor = _align(8 + header_len)
    for spec in header["arrays"]:
        offsets[spec["name"]] = cursor
        nbytes = int(np.dtype(spec["dtype"]).itemsize * np.prod(spec["shape"]))
        cursor = _align(cursor + nbytes)
    return offsets


def publish(machine: Machine) -> MachineArena:
    """Build ``machine``'s arena and publish it as a new segment.

    Raises :class:`~repro.errors.FabricError` when the machine cannot be
    represented (routing overrides), when the segment already exists
    (use :func:`get_arena` for attach-or-publish), or when the platform
    has no usable shared memory.
    """
    fingerprint = machine_fingerprint(machine)
    if getattr(machine.routing, "_overrides", None):
        raise FabricError(
            f"machine {machine.name!r} has explicit routing overrides, "
            f"which the serialized arena form cannot carry"
        )
    header, arrays = _pack_header(machine, fingerprint)
    blob = json.dumps(header, sort_keys=True, default=str).encode("utf-8")
    offsets = _offsets_for(header, len(blob))
    last_name, last_arr = arrays[-1]
    size = offsets[last_name] + last_arr.nbytes
    try:
        shm = _shared_memory().SharedMemory(
            name=segment_name(fingerprint), create=True, size=size
        )
    except FileExistsError:
        raise FabricError(
            f"arena segment for {fingerprint[:12]} already exists"
        ) from None
    except OSError as exc:
        raise FabricError(f"cannot create shared memory: {exc}") from exc
    shm.buf[:8] = struct.pack("<Q", len(blob))
    shm.buf[8:8 + len(blob)] = blob
    for name, arr in arrays:
        dest = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offsets[name]
        )
        dest[...] = arr
    return MachineArena(shm, header, offsets, owner=True)


def attach(fingerprint_or_segment: str) -> "MachineArena | None":
    """Attach the published arena, or ``None`` when no process has one.

    Accepts either a machine fingerprint or a raw segment name.  The
    attachment is never registered with the resource tracker, so an
    attaching process's exit can never destroy the shared segment.
    """
    name = fingerprint_or_segment
    if not name.startswith(SEGMENT_PREFIX):
        name = segment_name(name)
    try:
        with _untracked():
            shm = _shared_memory().SharedMemory(name=name)
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise FabricError(f"cannot attach shared memory {name}: {exc}") from exc
    (header_len,) = struct.unpack("<Q", bytes(shm.buf[:8]))
    try:
        header = json.loads(bytes(shm.buf[8:8 + header_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        shm.close()
        raise FabricError(f"segment {name} holds no arena header") from exc
    if header.get("magic") != _MAGIC:
        shm.close()
        raise FabricError(f"segment {name} is not a fabric arena")
    if header.get("version", 0) > _VERSION:
        shm.close()
        raise FabricError(
            f"arena {name} has version {header['version']}, newer than "
            f"supported {_VERSION}"
        )
    offsets = _offsets_for(header, header_len)
    stored_crc = header.get("payload_crc")
    if stored_crc is not None:
        crc = 0
        for spec in header["arrays"]:
            nbytes = int(
                np.dtype(spec["dtype"]).itemsize * np.prod(spec["shape"])
            )
            start = offsets[spec["name"]]
            crc = zlib.crc32(bytes(shm.buf[start:start + nbytes]), crc)
        if crc != stored_crc:
            shm.close()
            raise FabricError(
                f"arena {name} failed its payload checksum "
                f"(0x{crc:08x} != published 0x{stored_crc:08x}) — "
                f"the segment is corrupt; remove it and re-publish"
            )
    return MachineArena(shm, header, offsets, owner=False)


def get_arena(machine: Machine) -> MachineArena:
    """The process-wide arena for ``machine``: attach if published, else
    build and publish.  The returned arena carries one reference for the
    caller (pair with :meth:`MachineArena.release`)."""
    fingerprint = machine_fingerprint(machine)
    arena = _ARENAS.get(fingerprint)
    if arena is None or arena.closed:
        arena = attach(fingerprint)
        if arena is None:
            try:
                arena = publish(machine)
            except FabricError:
                # Lost a publish race: someone else created it between
                # our attach and create.  Re-raise anything else.
                arena = attach(fingerprint)
                if arena is None:
                    raise
        _ARENAS[fingerprint] = arena
    return arena.acquire()


def release_all() -> None:
    """Force-close every arena this process holds (atexit sweep).

    Ignores reference counts on purpose: the process is going away, so
    any still-held reference is unreleasable.  Owners unlink their
    segments; attachers just unmap.  Finishes with an orphan sweep so a
    clean exit also clears segments a SIGKILLed sibling left behind.
    """
    for arena in list(_ARENAS.values()):
        arena._close()
    _ARENAS.clear()
    try:
        reap_orphans()
    except Exception:  # pragma: no cover - never fail an exit path
        pass


def live_segments() -> "list[str]":
    """Arena segment names currently present in ``/dev/shm``.

    The leak check used by tests and ``scripts/fabric_smoke.sh``; empty
    where the platform exposes no ``/dev/shm`` directory.
    """
    import os

    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but is not ours to signal
    return True


def reap_orphans(max_age_s: float = 60.0) -> "list[str]":
    """Unlink arena segments whose publishing process is gone.

    A SIGKILLed parent cannot run its :mod:`atexit` sweep, so the
    segments it owned survive in ``/dev/shm``.  Every
    :class:`~repro.fabric.pool.FabricPool` start (and the atexit sweep
    itself) calls this: any ``repro_fab_*`` segment whose published pid
    is dead is unlinked; segments this process holds open, or whose
    publisher is alive, are left alone.  Segments with no readable
    header (pre-checksum format, or scribbled over) are reaped only
    once older than ``max_age_s`` seconds, so a publisher caught
    mid-write is not destroyed under it.  Returns the reaped names.
    """
    ours = {a.name for a in _ARENAS.values() if not a.closed}
    reaped: list[str] = []
    for name in live_segments():
        if name in ours:
            continue
        try:
            with _untracked():
                shm = _shared_memory().SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            continue  # raced with another reaper or the owner's exit
        try:
            owner_pid: int | None = None
            try:
                (header_len,) = struct.unpack("<Q", bytes(shm.buf[:8]))
                if 0 < header_len <= len(shm.buf) - 8:
                    header = json.loads(
                        bytes(shm.buf[8:8 + header_len]).decode("utf-8")
                    )
                    if header.get("magic") == _MAGIC:
                        pid = header.get("pid")
                        if isinstance(pid, int) and pid > 0:
                            owner_pid = pid
            except (struct.error, UnicodeDecodeError, json.JSONDecodeError):
                pass
            if owner_pid is not None:
                dead = not _pid_alive(owner_pid)
            else:
                # No trustworthy owner: only reap once clearly stale.
                try:
                    age = time.time() - os.stat(f"/dev/shm/{name}").st_mtime
                except OSError:
                    age = 0.0
                dead = age > max_age_s
            if dead:
                try:
                    with _untracked():
                        shm.unlink()
                    reaped.append(name)
                except (FileNotFoundError, OSError):
                    pass
        finally:
            try:
                shm.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
    return reaped


atexit.register(release_all)
