"""Quick mode must reach the same qualitative conclusions as full mode.

The test suite runs experiments with ``quick=True``; EXPERIMENTS.md and
the benches run full.  If the two modes disagreed on class structure or
check outcomes, the suite would be validating something the report
doesn't show.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.parametrize("exp_id", ["f10", "t1", "a6"])
def test_quick_and_full_checks_agree(exp_id):
    quick = run_experiment(exp_id, quick=True)
    full = run_experiment(exp_id, quick=False)
    assert quick.passed and full.passed
    assert [c.name for c in quick.checks] == [c.name for c in full.checks]


def test_f10_values_agree_across_modes():
    quick = run_experiment("f10", quick=True)
    full = run_experiment("f10", quick=False)
    # Per-node model values within noise of each other (exact orderings
    # of tied nodes may differ — that's what the classes absorb).
    for mode in ("write", "read"):
        for node, value in full.data[mode].items():
            assert quick.data[mode][node] == pytest.approx(value, rel=0.05)
