#!/usr/bin/env python3
"""Capacity planning: where should the next adapter attach?

The paper characterises devices where they are; a system builder gets
to *choose*.  The planner scores every node as an attachment point —
the expected multi-user bandwidth is Eq. 1 under uniform load, i.e. the
mean DMA-path bandwidth to/from the candidate — and explains each score
through the class structure a device there would induce.

Spoiler for the reference host: node 7, where the real HP DL585 G7 had
its I/O hub, is *not* the best choice on this fabric.

Run:  python examples/attachment_planning.py
"""

from repro import reference_host
from repro.analysis.planner import DeviceAttachmentPlanner

def main() -> None:
    host = reference_host(with_devices=False)

    for weight, label in ((0.5, "balanced"), (1.0, "ingest-heavy (all writes)"),
                          (0.0, "serve-heavy (all reads)")):
        planner = DeviceAttachmentPlanner(host, write_weight=weight)
        print(f"--- {label} ---")
        print(planner.render())
        best = planner.best()
        print(f"recommendation: node {best.node}\n")

    planner = DeviceAttachmentPlanner(host)
    best = planner.best().node
    print(f"class structure a device at node {best} would induce:")
    for mode in ("write", "read"):
        classes = planner.classes_for(best, mode)
        print(f"  {mode}: {[sorted(c.node_ids) for c in classes]}")
    print(
        f"\nversus the historical choice (node 7):\n"
        f"  write: {[sorted(c.node_ids) for c in planner.classes_for(7, 'write')]}\n"
        f"  read:  {[sorted(c.node_ids) for c in planner.classes_for(7, 'read')]}\n"
        f"\nthe fabric, not the motherboard silkscreen, decides what your "
        f"tenants will measure."
    )


if __name__ == "__main__":
    main()
