"""NIC and SSD array device objects."""

import pytest

from repro.devices.nic import Nic
from repro.devices.pcie import PcieLink
from repro.devices.response import EngineProfile, ResponseCurve
from repro.devices.ssd import SsdArray
from repro.errors import DeviceError


def _profile(name, cap=20.0):
    return EngineProfile(
        name=name,
        curve=ResponseCurve(cap_gbps=cap, path_ref_gbps=50.0, beta=0.1, gamma=1.0),
    )


class TestNic:
    def test_defaults_derived(self):
        nic = Nic(name="n", node_id=7, pcie=PcieLink(gen=2, lanes=8),
                  engines={"tcp_send": _profile("tcp_send")})
        assert nic.irq.irq_node == 7
        assert nic.dma.max_gbps == pytest.approx(32.0)

    def test_engine_lookup(self):
        nic = Nic(name="n", node_id=7, pcie=PcieLink(gen=2, lanes=8),
                  engines={"tcp_send": _profile("tcp_send")})
        assert nic.engine("tcp_send").name == "tcp_send"
        with pytest.raises(DeviceError):
            nic.engine("rdma_read")

    def test_cap_above_pcie_rejected(self):
        with pytest.raises(DeviceError):
            Nic(name="n", node_id=7, pcie=PcieLink(gen=2, lanes=8),
                engines={"tcp_send": _profile("tcp_send", cap=40.0)})

    def test_empty_engines_rejected(self):
        with pytest.raises(DeviceError):
            Nic(name="n", node_id=7, pcie=PcieLink(gen=2, lanes=8), engines={})

    def test_direction_map(self):
        assert Nic.ENGINE_DIRECTION["tcp_send"] == "write"
        assert Nic.ENGINE_DIRECTION["rdma_read"] == "read"


class TestSsdArray:
    def test_array_dma_spans_cards(self):
        ssd = SsdArray(name="s", node_id=7, pcie=PcieLink(gen=2, lanes=8),
                       engines={"libaio_read": _profile("libaio_read", cap=34.7)},
                       n_cards=2)
        assert ssd.dma.max_gbps == pytest.approx(64.0)
        assert ssd.dma.contexts == 2

    def test_aggregate_cap_respects_array_limit(self):
        # 34.7 > one card's 32 but < two cards' 64: allowed only with 2 cards.
        with pytest.raises(DeviceError):
            SsdArray(name="s", node_id=7, pcie=PcieLink(gen=2, lanes=8),
                     engines={"libaio_read": _profile("libaio_read", cap=34.7)},
                     n_cards=1)

    def test_invalid_card_count(self):
        with pytest.raises(DeviceError):
            SsdArray(name="s", node_id=7, pcie=PcieLink(gen=2, lanes=8),
                     engines={"libaio_read": _profile("libaio_read")}, n_cards=0)

    def test_engine_lookup_error(self):
        ssd = SsdArray(name="s", node_id=7, pcie=PcieLink(gen=2, lanes=8),
                       engines={"libaio_read": _profile("libaio_read")})
        with pytest.raises(DeviceError):
            ssd.engine("libaio_write")
