"""Manifest schema round-trip, validation, and diffing."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    MetricsRegistry,
    TraceRecorder,
    build_manifest,
    diff_manifests,
    load_manifest,
    validate_manifest,
    write_manifest,
)


def _recorded_run(counter_values: dict | None = None) -> TraceRecorder:
    recorder = TraceRecorder(MetricsRegistry())
    with recorder.span("outer"):
        with recorder.span("inner"):
            pass
    for name, value in (counter_values or {}).items():
        recorder.metrics.count(name, value)
    return recorder


def test_build_write_load_validate_round_trip(tmp_path):
    recorder = _recorded_run({"rng.draws/noise/run0": 12, "solver.solves": 3})
    manifest = build_manifest(
        recorder, command="experiment", argv=["f10"], seed=7, config={"quick": True}
    )
    validate_manifest(manifest)  # no raise
    path = tmp_path / "manifest.json"
    write_manifest(manifest, path)
    back = load_manifest(path)
    assert back == json.loads(json.dumps(manifest))  # JSON-stable
    assert back["schema_version"] == MANIFEST_SCHEMA_VERSION
    assert back["spans"] == {"total": 2, "max_depth": 2}
    # rng.draws/ counters are folded into the seed block, stream-keyed.
    assert back["seed"] == {"root_seed": 7, "streams": {"noise/run0": 12}}
    assert back["phases"]["outer"]["count"] == 1


def test_validate_rejects_missing_field():
    manifest = build_manifest(_recorded_run(), command="x")
    del manifest["git_sha"]
    with pytest.raises(ObsError, match="git_sha"):
        validate_manifest(manifest)


def test_validate_rejects_bool_where_int_expected():
    manifest = build_manifest(_recorded_run(), command="x")
    manifest["spans"]["total"] = True
    with pytest.raises(ObsError, match="bool"):
        validate_manifest(manifest)


def test_validate_rejects_newer_schema_version():
    manifest = build_manifest(_recorded_run(), command="x")
    manifest["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
    with pytest.raises(ObsError, match="newer"):
        validate_manifest(manifest)


def test_validate_rejects_malformed_phase_entry():
    manifest = build_manifest(_recorded_run(), command="x")
    manifest["phases"]["bad"] = {"count": "three"}
    with pytest.raises(ObsError, match="phases"):
        validate_manifest(manifest)


def test_write_manifest_refuses_invalid_data(tmp_path):
    with pytest.raises(ObsError):
        write_manifest({"schema_version": 1}, tmp_path / "manifest.json")
    assert not (tmp_path / "manifest.json").exists()


def test_load_manifest_missing_and_corrupt(tmp_path):
    with pytest.raises(ObsError, match="no manifest"):
        load_manifest(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ObsError, match="not valid JSON"):
        load_manifest(bad)


def test_diff_identical_runs_are_deterministic_twins():
    a = build_manifest(_recorded_run({"n": 5}), command="x", seed=7)
    b = build_manifest(_recorded_run({"n": 5}), command="x", seed=7)
    diff = diff_manifests(a, b)
    assert diff["deterministic"] is True
    assert diff["counters"] == {} and diff["config"] == {}
    # Wall times are reported but never affect the verdict.
    assert set(diff["phases"]) == {"outer", "inner"}


def test_diff_flags_counter_config_and_seed_changes():
    a = build_manifest(
        _recorded_run({"n": 5}), command="x", seed=7, config={"quick": True}
    )
    b = build_manifest(
        _recorded_run({"n": 6}), command="x", seed=8, config={"quick": False}
    )
    diff = diff_manifests(a, b)
    assert diff["deterministic"] is False
    assert diff["counters"]["n"] == [5, 6]
    assert diff["config"]["quick"] == [True, False]
    assert diff["identity"]["root_seed"] == [7, 8]
