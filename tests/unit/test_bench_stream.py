"""STREAM benchmark protocol."""

import pytest

from repro.bench.stream import STREAM_KERNELS, StreamBenchmark
from repro.errors import BenchmarkError


class TestProtocol:
    def test_array_defaults_to_4x_llc(self, host):
        bench = StreamBenchmark(host)
        assert bench.array_bytes == 4 * host.params.llc_bytes
        # The paper quotes 2,621,440 long integers for 20 MB arrays.
        assert bench.array_elements == 2_500_000

    def test_small_arrays_rejected(self, host):
        with pytest.raises(BenchmarkError):
            StreamBenchmark(host, array_bytes=host.params.llc_bytes)

    def test_unknown_kernel_rejected(self, host):
        with pytest.raises(BenchmarkError):
            StreamBenchmark(host, kernel="fma")

    def test_zero_runs_rejected(self, host):
        with pytest.raises(BenchmarkError):
            StreamBenchmark(host, runs=0)

    def test_max_of_runs_reported(self, host):
        bench = StreamBenchmark(host, runs=50)
        m = bench.measure(7, 4)
        assert m.protocol == "max"
        assert m.runs == 50
        assert m.gbps == max(m.samples)

    def test_deterministic(self, host):
        a = StreamBenchmark(host, runs=20).measure(3, 5).gbps
        b = StreamBenchmark(host, runs=20).measure(3, 5).gbps
        assert a == b


class TestKernels:
    def test_kernels_within_two_percent(self, host):
        values = {
            kernel: StreamBenchmark(host, kernel=kernel, runs=5).measure(7, 0).gbps
            for kernel in STREAM_KERNELS
        }
        lo, hi = min(values.values()), max(values.values())
        assert (hi - lo) / hi < 0.05

    def test_add_touches_three_arrays(self, host):
        copy = StreamBenchmark(host, kernel="copy")
        add = StreamBenchmark(host, kernel="add")
        assert copy._arrays_needed() == 2
        assert add._arrays_needed() == 3


class TestModels:
    def test_matrix_shape(self, host):
        matrix = StreamBenchmark(host, runs=3).matrix()
        assert matrix.values.shape == (8, 8)

    def test_cpu_centric_is_matrix_row(self, host):
        bench = StreamBenchmark(host, runs=3)
        row = bench.cpu_centric(7)
        matrix = bench.matrix()
        for node in host.node_ids:
            assert row[node] == pytest.approx(matrix.at(7, node))

    def test_memory_centric_is_matrix_col(self, host):
        bench = StreamBenchmark(host, runs=3)
        col = bench.memory_centric(7)
        matrix = bench.matrix()
        for node in host.node_ids:
            assert col[node] == pytest.approx(matrix.at(node, 7))
