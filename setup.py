"""Shim for legacy editable installs on offline machines without `wheel`.

``pip install -e . --no-use-pep517`` uses this; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
