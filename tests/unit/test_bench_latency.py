"""Latency benchmark."""

import pytest

from repro.analysis.numa_factor import numa_factor
from repro.bench.latency import LatencyBenchmark, measured_numa_factor
from repro.errors import BenchmarkError
from repro.topology.builders import amd_4s8n, intel_4s4n


@pytest.fixture()
def bench(host, registry):
    return LatencyBenchmark(host, registry=registry, runs=10)


class TestMeasure:
    def test_local_latency(self, bench, host):
        m = bench.measure(3, 3)
        assert m.protocol == "mean"
        assert m.value == pytest.approx(100.0, rel=0.05)  # ns

    def test_remote_exceeds_local(self, bench):
        assert bench.measure(7, 0).value > bench.measure(7, 7).value

    def test_quoted_pair_latencies(self, bench, host):
        # 7<->0 adds 2 x 12.5 ns of link latency.
        assert bench.measure(7, 0).value == pytest.approx(125.0, rel=0.05)

    def test_cache_defeat_enforced(self, host):
        with pytest.raises(BenchmarkError):
            LatencyBenchmark(host, array_bytes=host.params.llc_bytes)

    def test_runs_validated(self, host):
        with pytest.raises(BenchmarkError):
            LatencyBenchmark(host, runs=0)


class TestNumaFactor:
    def test_matrix_shape(self, bench, host):
        assert bench.matrix().shape == (host.n_nodes, host.n_nodes)

    @pytest.mark.parametrize("builder,paper", [(intel_4s4n, 1.5), (amd_4s8n, 2.7)])
    def test_measured_factor_matches_table1(self, registry, builder, paper):
        assert measured_numa_factor(builder(), registry, runs=10) == pytest.approx(
            paper, rel=0.1
        )

    def test_measured_matches_analytic(self, host, registry):
        measured = measured_numa_factor(host, registry, runs=20)
        analytic = numa_factor(host)
        assert measured == pytest.approx(analytic, rel=0.03)
