"""Fault injection: declarative fault plans, degraded-mode solving, chaos.

The package has three layers:

* :mod:`repro.faults.events` — the fault taxonomy (link degradation and
  failure, memory-controller throttling, NIC port flaps, SSD wear, IRQ
  storms) and the timed :class:`FaultEvent` wrapper;
* :mod:`repro.faults.plan` — :class:`FaultPlan` (the schedule) and
  :class:`FaultedMachine` (the static what-if view with its own solver
  fingerprint);
* :mod:`repro.faults.degraded` — the degraded-mode flow simulator:
  re-route, seeded-backoff retry, or structured failure;
* :mod:`repro.faults.chaos` — the seeded chaos scenarios behind the
  ``repro-numa chaos`` CLI and their resilience report;
* :mod:`repro.faults.execution` — execution-layer faults (crash points,
  torn journal writes, stalled workers) armed through the environment
  and exercised by the ``repro-numa recover`` soak.
"""

from repro.faults.chaos import (
    SCENARIOS,
    ChaosReport,
    OutcomeRow,
    ScenarioResult,
    run_chaos,
    run_scenario,
)
from repro.faults.degraded import (
    DegradedFlowRunner,
    DegradedOutcome,
    RetryPolicy,
    machine_rerouter,
    reroute_resources,
)
from repro.faults.execution import (
    STALL_ENV,
    CrashPoint,
    ExecutionFault,
    TornWrite,
    WorkerStall,
)
from repro.faults.events import (
    Fault,
    FaultEvent,
    IrqStorm,
    LinkDegrade,
    LinkFail,
    MemoryThrottle,
    NicPortFlap,
    SsdWearThrottle,
)
from repro.faults.plan import FaultedMachine, FaultPlan

__all__ = [
    "Fault",
    "FaultEvent",
    "LinkDegrade",
    "LinkFail",
    "MemoryThrottle",
    "IrqStorm",
    "NicPortFlap",
    "SsdWearThrottle",
    "ExecutionFault",
    "CrashPoint",
    "TornWrite",
    "WorkerStall",
    "STALL_ENV",
    "FaultPlan",
    "FaultedMachine",
    "RetryPolicy",
    "DegradedOutcome",
    "DegradedFlowRunner",
    "reroute_resources",
    "machine_rerouter",
    "OutcomeRow",
    "ScenarioResult",
    "ChaosReport",
    "SCENARIOS",
    "run_scenario",
    "run_chaos",
]
