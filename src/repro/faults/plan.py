"""Declarative fault plans and the static :class:`FaultedMachine` view.

A :class:`FaultPlan` is an ordered set of timed
:class:`~repro.faults.events.FaultEvent` records.  It serves two
consumers:

* the **degraded-mode simulator** asks for the combined capacity
  derating factors at a time ``t`` (:meth:`FaultPlan.scaled_capacities`)
  and for the time boundaries where the factor set changes
  (:meth:`FaultPlan.boundaries`);
* **static what-if studies** ask for a :class:`FaultedMachine` — a full
  :class:`~repro.topology.machine.Machine` rebuilt from the mutated
  canonical description.  Its fingerprint differs from the healthy
  machine's, so :func:`repro.solver.session.get_session` hands out a
  fresh session and no cached capacity or route survives the fault.
  :meth:`FaultedMachine.restore` rebuilds the healthy host from its
  recorded description; the restored fingerprint is byte-identical to
  the original (the property tests pin this).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import FaultError
from repro.faults.events import Fault, FaultEvent
from repro.topology.machine import Machine
from repro.topology.serialize import components_from_dict, machine_to_dict

__all__ = ["FaultPlan", "FaultedMachine"]


class FaultPlan:
    """An immutable, time-ordered collection of fault events.

    Parameters
    ----------
    events:
        :class:`FaultEvent` records, or bare :class:`Fault` objects
        (wrapped as permanent faults active from ``t=0``).
    """

    def __init__(self, events: Iterable[FaultEvent | Fault] = ()) -> None:
        wrapped = [
            e if isinstance(e, FaultEvent) else FaultEvent(fault=e)
            for e in events
        ]
        for e in wrapped:
            if not isinstance(e.fault, Fault):
                raise FaultError(f"not a fault: {e.fault!r}")
        # Stable sort: activation time first, insertion order among ties.
        self._events = tuple(sorted(wrapped, key=lambda e: e.at_s))

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """The plan's events, ordered by activation time."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def describe(self) -> str:
        """Deterministic one-line summary of the plan."""
        if not self._events:
            return "no faults"
        return ", ".join(e.describe() for e in self._events)

    # --- time queries -----------------------------------------------------
    def active_at(self, t: float) -> tuple[Fault, ...]:
        """The faults live at simulated time ``t``, in plan order."""
        return tuple(e.fault for e in self._events if e.active_at(t))

    def boundaries(self) -> tuple[float, ...]:
        """Sorted unique times at which the active-fault set changes."""
        times = set()
        for e in self._events:
            times.add(e.at_s)
            if e.until_s is not None:
                times.add(e.until_s)
        return tuple(sorted(times))

    def next_boundary(self, t: float) -> float | None:
        """The first boundary strictly after ``t``, if any."""
        for b in self.boundaries():
            if b > t:
                return b
        return None

    # --- capacity derating ------------------------------------------------
    def capacity_factors_at(self, t: float) -> dict[str, float]:
        """Combined resource derating factors at time ``t``.

        Factors of overlapping faults on the same resource multiply, so
        the combined factor is still in ``[0, 1]``.
        """
        combined: dict[str, float] = {}
        for fault in self.active_at(t):
            for resource, factor in fault.capacity_factors().items():
                combined[resource] = combined.get(resource, 1.0) * factor
        return combined

    def scaled_capacities(
        self, healthy: Mapping[str, float], t: float
    ) -> dict[str, float]:
        """The healthy capacity map derated by the faults active at ``t``.

        Resources named by a fault but absent from ``healthy`` are
        ignored — a plan written for a cluster can be reused against a
        single machine's capacity map and vice versa.
        """
        scaled = dict(healthy)
        for resource, factor in self.capacity_factors_at(t).items():
            if resource in scaled:
                scaled[resource] = scaled[resource] * factor
        return scaled

    # --- static application -----------------------------------------------
    def topology_faults_at(self, t: float) -> tuple[Fault, ...]:
        """The live faults at ``t`` that rewrite the machine description."""
        return tuple(f for f in self.active_at(t) if f.topological)

    def apply(self, machine: Machine, at_s: float = 0.0) -> "FaultedMachine":
        """The static :class:`FaultedMachine` view for time ``at_s``.

        Only topology faults participate; resource-level faults (NIC
        flap, SSD wear) have no static footprint and are skipped.
        """
        return FaultedMachine(machine, self.topology_faults_at(at_s))


class FaultedMachine(Machine):
    """A machine view with topology faults applied.

    Built by mutating the healthy machine's canonical description and
    re-validating it through the ordinary constructor, so a faulted
    machine is a *real* machine: same routing, same capacity models,
    different fingerprint.  Device attachments are carried over from the
    healthy host (devices are not part of the fingerprint).

    Unlike :func:`repro.topology.modify.with_link_removed`, a
    :class:`~repro.faults.events.LinkFail` here may disconnect the
    fabric; route lookups on unreachable pairs then raise
    :class:`~repro.errors.RoutingError`, which the degraded-mode
    simulator converts into structured ``"failed"`` outcomes.
    """

    def __init__(
        self,
        base: Machine,
        faults: Iterable[Fault],
        name: str | None = None,
    ) -> None:
        applied = tuple(faults)
        for fault in applied:
            if not isinstance(fault, Fault):
                raise FaultError(f"not a fault: {fault!r}")
        healthy: dict[str, Any] = machine_to_dict(base)
        data = machine_to_dict(base)
        for fault in applied:
            fault.mutate_description(data)
        if name is None:
            tags = ",".join(f.describe() for f in applied) or "none"
            name = f"{base.name}+faults[{tags}]"
        data["name"] = name
        _, nodes, packages, links, params = components_from_dict(data)
        Machine.__init__(self, name, nodes, packages, links, params)
        if base.routing.populated_planes:
            # Incremental re-route: only sources the fault delta can
            # actually have changed re-run BFS + Pareto-DP; the result
            # is bit-identical to the fresh table the constructor just
            # made, populated from scratch.
            self._routing = base.routing.derive(self._links)
        self.devices = dict(base.devices)
        #: The healthy host this view was derived from.
        self.base = base
        #: The faults baked into this view, in application order.
        self.applied_faults = applied
        self._healthy_description = healthy

    def restore(self) -> Machine:
        """Rebuild the healthy machine from the recorded description.

        The result is a *fresh* object whose fingerprint is byte-identical
        to the original host's, demonstrating that fault application is
        fully reversible.  Device attachments are carried over.
        """
        _, nodes, packages, links, params = components_from_dict(
            self._healthy_description
        )
        machine = Machine(
            self._healthy_description["name"], nodes, packages, links, params
        )
        if self.base.routing.populated_planes:
            # The healthy link map is byte-identical to the base's, so
            # the delta is empty and every route is carried over.
            machine._routing = self.base.routing.derive(machine._links)
        machine.devices = dict(self.base.devices)
        return machine
