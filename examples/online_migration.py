#!/usr/bin/env python3
"""Online placement and migration of I/O streams (the §VI future work).

A multi-user arrival process of bulk RDMA_WRITE streams hits the node-7
NIC.  Four controllers compete:

* ``local``         — Linux default: every stream on the device node;
* ``random``        — affinity roulette;
* ``class-spread``  — admission-time placement from the memcpy model;
* ``class-migrate`` — streams arrive local (unmodified applications)
                      and get migrated per the model every epoch, paying
                      a stall per move.

The sweep varies arrival pressure, showing where model-driven placement
pays and how much of it migration can recover after the fact.

Run:  python examples/online_migration.py
"""

from repro import reference_host
from repro.core import IOModelBuilder, OnlineSimulator, OnlineWorkload
from repro.rng import RngRegistry

def main() -> None:
    host = reference_host()
    model = IOModelBuilder(host).build(7, "write")
    print(f"placement model: classes "
          f"{[sorted(c.node_ids) for c in model.classes]}\n")

    for rate in (0.05, 0.12, 0.25):
        registry = RngRegistry().child(f"rate{rate}")
        workload = OnlineWorkload(registry, rate_per_s=rate)
        jobs = workload.generate(60, label=f"r{rate}")
        simulator = OnlineSimulator(host, model, registry=registry.child("sim"))
        outcomes = simulator.compare(jobs)

        local = outcomes["local"].mean_completion_s
        print(f"arrival rate {rate}/s (60 streams, ~40 GB each):")
        for policy in ("local", "random", "class-spread", "class-migrate"):
            outcome = outcomes[policy]
            gain = local / outcome.mean_completion_s - 1
            print(f"  {outcome.render()}  ({100 * gain:+.1f} % vs local)")
        print()

    print(
        "reading: under light load random placement squanders bandwidth "
        "on class-3 nodes while the model-driven policies stay near "
        "optimal; at moderate queueing pressure class-spread wins "
        "clearly and migration recovers most of that win for naively "
        "placed workloads.  Under extreme pressure the trade-off the "
        "paper closes with appears in the data: spreading over *more* "
        "(worse) nodes can beat spreading over fewer good ones, because "
        "oversubscription costs more than class penalty — 'tradeoffs "
        "between data locality and resource contention' (§VI)."
    )


if __name__ == "__main__":
    main()
