"""Device-attachment planning: where should the adapter go?

The paper characterises a host whose devices already sit behind node 7.
The inverse question — *given* this fabric, which node should the next
adapter attach to? — falls out of the same machinery: for a candidate
attachment node ``k``, the expected multi-user bandwidth under uniform
load is Eq. 1 with uniform class fractions, i.e. the mean DMA-path
bandwidth between every node and ``k``.  The planner scores every
candidate analytically (no benchmarking needed at planning time) and
explains each score with its class structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import classify_nodes
from repro.errors import ModelError
from repro.topology.machine import Machine

__all__ = ["AttachmentScore", "DeviceAttachmentPlanner"]


@dataclass(frozen=True)
class AttachmentScore:
    """One candidate attachment node's expected performance."""

    node: int
    write_mean_gbps: float  # uniform multi-user device-write expectation
    read_mean_gbps: float
    write_worst_gbps: float  # the node a pessimal tenant would see
    read_worst_gbps: float
    combined_gbps: float

    def render(self) -> str:
        """One summary line."""
        return (
            f"node {self.node}: combined {self.combined_gbps:6.1f} Gbps "
            f"(write mean {self.write_mean_gbps:.1f} / worst "
            f"{self.write_worst_gbps:.1f}; read mean {self.read_mean_gbps:.1f} "
            f"/ worst {self.read_worst_gbps:.1f})"
        )


class DeviceAttachmentPlanner:
    """Rank a machine's nodes as device attachment points.

    Parameters
    ----------
    machine:
        The host (devices not required).
    write_weight:
        Fraction of the expected workload that is device-write traffic;
        the rest is device-read.
    """

    def __init__(self, machine: Machine, write_weight: float = 0.5) -> None:
        if not 0 <= write_weight <= 1:
            raise ModelError(f"write_weight must be in [0, 1], got {write_weight}")
        self.machine = machine
        self.write_weight = write_weight

    def score(self, node: int) -> AttachmentScore:
        """Score one candidate attachment node."""
        machine = self.machine
        if node not in machine.node_ids:
            raise ModelError(f"unknown node {node}")
        writes = [machine.dma_path_gbps(i, node) for i in machine.node_ids]
        reads = [machine.dma_path_gbps(node, i) for i in machine.node_ids]
        write_mean = float(np.mean(writes))
        read_mean = float(np.mean(reads))
        combined = self.write_weight * write_mean + (1 - self.write_weight) * read_mean
        return AttachmentScore(
            node=node,
            write_mean_gbps=write_mean,
            read_mean_gbps=read_mean,
            write_worst_gbps=min(writes),
            read_worst_gbps=min(reads),
            combined_gbps=combined,
        )

    def rank(self) -> list[AttachmentScore]:
        """All candidates, best first (ties to the lower node id)."""
        scores = [self.score(node) for node in self.machine.node_ids]
        scores.sort(key=lambda s: (-s.combined_gbps, s.node))
        return scores

    def best(self) -> AttachmentScore:
        """The recommended attachment node."""
        return self.rank()[0]

    def classes_for(self, node: int, mode: str) -> tuple:
        """The class structure a device at ``node`` would induce."""
        if mode == "write":
            values = {i: self.machine.dma_path_gbps(i, node)
                      for i in self.machine.node_ids}
        elif mode == "read":
            values = {i: self.machine.dma_path_gbps(node, i)
                      for i in self.machine.node_ids}
        else:
            raise ModelError(f"mode must be 'write' or 'read', got {mode!r}")
        return classify_nodes(values, self.machine, node)

    def render(self) -> str:
        """The full ranking."""
        lines = [
            f"device attachment ranking for {self.machine.name!r} "
            f"(write weight {self.write_weight:.0%}):"
        ]
        lines += ["  " + s.render() for s in self.rank()]
        return "\n".join(lines)
