"""T5 — Table V: the device-*read* performance model, validated.

Same protocol as Table IV for the read direction (TCP receive,
RDMA_READ, SSD read).  The paper's own table contains a small class-2/3
inversion for the TCP receiver (20.0 vs 20.6 Gbps), so the ordering
check carries the matching tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.bench.fio import FioRunner
from repro.core.iomodel import IOModelBuilder
from repro.core.model import ModelTable
from repro.core.validation import class_ordering_holds
from repro.experiments import paper_values
from repro.experiments.common import (
    IO_NODE,
    check,
    check_close,
    default_machine,
    default_registry,
)
from repro.experiments.registry import ExperimentResult
from repro.experiments.sweeps import READ_OPERATIONS, operation_sweep

TITLE = "Table V: NUMA I/O bandwidth performance model for device read"

_PAPER_KEYS = {
    "TCP receiver": "tcp_recv",
    "RDMA_READ": "rdma_read",
    "SSD read": "ssd_read",
}

#: Per-operation tolerance on class averages.  The TCP receiver row is
#: the noisiest in the paper itself (its classes 2/3 invert there), so
#: it gets a wider band; the offloaded protocols are tight.
_AVG_TOL = {
    "TCP receiver": 0.12,
    "RDMA_READ": 0.10,
    "SSD read": 0.10,
}


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Build + validate Table V."""
    m = default_machine(machine)
    registry = default_registry(registry)
    builder = IOModelBuilder(m, registry=registry, runs=10 if quick else 100)
    model = builder.build(IO_NODE, "read")
    runner = FioRunner(m, registry=registry)

    measurements = {
        label: operation_sweep(runner, engine, rw, numjobs)
        for label, (engine, rw, numjobs) in READ_OPERATIONS.items()
    }
    table = ModelTable.from_measurements(model, measurements)

    checks = [
        check(
            "classes match Table V",
            [sorted(c.node_ids) for c in model.classes] == paper_values.TABLE5_CLASSES,
            f"got {[sorted(c.node_ids) for c in model.classes]}",
        )
    ]
    for cls, paper_avg in zip(model.classes, paper_values.TABLE5_AVG["memcpy"]):
        checks.append(
            check_close(f"memcpy class {cls.rank} avg", cls.avg, paper_avg, 0.10)
        )
    for label, per_node in measurements.items():
        paper_avgs = paper_values.TABLE5_AVG[_PAPER_KEYS[label]]
        for cls, paper_avg in zip(model.classes, paper_avgs):
            measured = float(np.mean([per_node[n] for n in cls.node_ids]))
            checks.append(
                check_close(
                    f"{label} class {cls.rank} avg",
                    measured,
                    paper_avg,
                    _AVG_TOL[label],
                )
            )
        checks.append(
            check(
                f"{label}: class ordering holds",
                class_ordering_holds(model, per_node, tolerance=0.08),
            )
        )
    # The paper's flagship: RDMA_READ ranks {2,3} ABOVE {0,1}.
    rdma = measurements["RDMA_READ"]
    reversal = float(np.mean([rdma[n] for n in (2, 3)])) > float(
        np.mean([rdma[n] for n in (0, 1)])
    )
    checks.append(check("RDMA_READ ranks {2,3} above {0,1} (STREAM reversal)", reversal))
    return ExperimentResult(
        exp_id="t5", title=TITLE, text=table.render(),
        data={"model": model.values, "measurements": measurements},
        checks=tuple(checks),
    )
