"""Examples stay loadable and well-formed.

Each example is imported from its file (executing its module body —
imports and definitions, not ``main()``), which catches API drift
the moment a signature changes.  The full runs happen in CI wall-time
via the scripts themselves; here we verify structure cheaply.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 9
    assert (EXAMPLES_DIR / "quickstart.py").exists()


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = _load(path)
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"
    assert module.__doc__, f"{path.name} lacks a docstring"
    assert "Run:" in module.__doc__, f"{path.name} docstring lacks run hint"


def test_quickstart_main_runs(capsys):
    module = _load(EXAMPLES_DIR / "quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "Class 1" in out
    assert "Eq. 1" in out
