"""The tiered answer path: analytic fit, class-model cache, staleness."""

import math

import pytest

from repro.core.iomodel import IOModelBuilder
from repro.core.scheduler_advisor import PlacementAdvisor
from repro.rng import RngRegistry
from repro.service import AdvisoryBackend, PlacementService
from repro.service.soak import LogicalClock, run_soak
from repro.service.tiers import (
    TIER_ANALYTIC,
    TIER_CLASS,
    TIER_SOLVE,
    AnalyticFit,
    stamp_tier,
)


@pytest.fixture(scope="module")
def model(host):
    return IOModelBuilder(host, registry=RngRegistry(), runs=5).build(7, "write")


@pytest.fixture()
def backend(host):
    return AdvisoryBackend(
        host, registry=RngRegistry(), runs=3, clock=LogicalClock()
    )


class TestAnalyticFit:
    def test_beta_is_the_class_geometric_mean(self, model):
        fit = AnalyticFit.fit(model)
        for cls in model.classes:
            values = [model.values[n] for n in cls.node_ids]
            expected = math.exp(sum(math.log(v) for v in values) / len(values))
            assert fit.beta[cls.rank] == pytest.approx(expected)
            for node in cls.node_ids:
                assert fit.node_rank[node] == cls.rank

    def test_error_bounds_are_measured_and_documented(self, model):
        fit = AnalyticFit.fit(model)
        # The documented bound (docs/service.md): coefficients within
        # 5% of the exact Eq. 1 class averages on the reference host.
        assert 0.0 <= fit.eq1_rel_err_bound < 0.05
        assert 0.0 <= fit.max_node_rel_err < 0.15

    def test_predictions_stay_within_the_fit_bound(self, model):
        fit = AnalyticFit.fit(model)
        avgs = {c.rank: c.avg for c in model.classes}
        mixes = [[0], [0, 1], [7, 7, 3], sorted(model.values)]
        for streams in mixes:
            out = fit.predict_eq1(streams)
            ranks = [fit.node_rank[n] for n in streams]
            exact = sum(avgs[r] for r in ranks) / len(ranks)
            rel = abs(out["predicted_gbps"] - exact) / exact
            assert rel <= fit.eq1_rel_err_bound + 1e-12
            assert out["fit_rel_err_bound"] == round(fit.eq1_rel_err_bound, 6)

    def test_off_model_stream_defers(self, model):
        assert AnalyticFit.fit(model).predict_eq1([999]) is None


class TestStampTier:
    def test_stamp_rounds_and_clamps(self):
        out = stamp_tier({}, TIER_SOLVE, -0.25)
        assert out == {"tier": 3, "staleness_s": 0.0}
        assert stamp_tier({}, TIER_ANALYTIC, 1.23456789)["staleness_s"] == (
            1.234568
        )


class TestTierTwoBitIdentity:
    def test_advise_payload_matches_the_solver_advisor(self, host, backend):
        model = backend.model(7, "write")
        entry = backend.tiers.entries[(7, "write")]
        for tasks in (1, 3, 8, 40, 200):
            for avoid in (False, True):
                for tolerance in (0.0, 0.05, 0.2):
                    advisor = PlacementAdvisor(
                        host, model, tolerance=tolerance
                    )
                    plan = advisor.advise(tasks, avoid_irq_node=avoid)
                    payload = entry.advise_payload(tasks, avoid, tolerance)
                    assert payload["tasks_per_node"] == {
                        str(n): c
                        for n, c in sorted(plan.tasks_per_node.items()) if c
                    }
                    assert payload["stream_nodes"] == plan.stream_nodes()
                    assert tuple(payload["classes_used"]) == plan.classes_used

    def test_classify_payload_carries_exact_values(self, backend):
        cold = backend.classify(7, "write")
        warm = backend.classify(7, "write")
        assert cold["tier"] == 3 and warm["tier"] == 2
        assert warm["classes"] == cold["classes"]
        assert warm["values"] == cold["values"]


class TestTierDispatch:
    def test_cold_then_warm_tiers(self, backend):
        assert backend.predict_eq1(7, "write", [0, 1])["tier"] == TIER_SOLVE
        assert backend.predict_eq1(7, "write", [0, 1])["tier"] == TIER_ANALYTIC
        assert backend.classify(7, "write")["tier"] == TIER_CLASS
        assert backend.advise(7, "write", tasks=4)["tier"] == TIER_CLASS
        assert backend.solves == 1  # one characterization served them all

    def test_staleness_ticks_on_the_clock(self, backend):
        backend.classify(7, "write")
        backend.clock.advance(5.0)
        out = backend.classify(7, "write")
        assert out["tier"] == TIER_CLASS
        assert out["staleness_s"] == 5.0

    def test_stale_entries_force_a_recharacterization(self, host):
        clock = LogicalClock()
        backend = AdvisoryBackend(
            host, registry=RngRegistry(), runs=3, clock=clock,
            tier_max_staleness_s=1.0,
        )
        backend.classify(7, "write")
        clock.advance(0.5)
        assert backend.classify(7, "write")["tier"] == TIER_CLASS
        clock.advance(2.0)
        out = backend.classify(7, "write")
        assert out["tier"] == TIER_SOLVE
        assert out["staleness_s"] == 0.0
        assert backend.solves == 2
        assert backend.tiers.stale_evictions == 1
        # ... and the refreshed entry serves tier 2 again.
        assert backend.classify(7, "write")["tier"] == TIER_CLASS

    def test_plan_base_is_memoized_across_weights(self, backend):
        first = backend.plan(write_weight=0.6)
        second = backend.plan(write_weight=0.6)
        other = backend.plan(write_weight=0.3)
        assert first["tier"] == TIER_SOLVE
        # The per-node score base is weight-independent, so *every*
        # later weight is pure arithmetic over it: tier 1.
        assert second["tier"] == TIER_ANALYTIC
        assert second["source"] == "analytic-base"
        assert second["ranking"] == first["ranking"]
        assert other["tier"] == TIER_ANALYTIC
        assert other["write_weight"] == 0.3

    def test_degraded_answers_are_tier_two_with_true_staleness(self, backend):
        backend.warm((7,))
        backend.clock.advance(9.0)
        out = backend.degraded_answer("advise", {
            "target": 7, "mode": "write", "tasks": 5,
            "avoid_irq_node": False, "tolerance": 0.05,
        })
        assert out["degraded"] is True
        assert out["tier"] == TIER_CLASS
        assert out["staleness_s"] == 9.0


class TestHealthAndSoakReporting:
    def test_health_reports_tier_block(self, host):
        backend = AdvisoryBackend(host, registry=RngRegistry(), runs=3)
        service = PlacementService(backend, clock=LogicalClock())
        backend.warm((7,))
        import json

        def call(method, params):
            line = json.dumps({"jsonrpc": "2.0", "id": 1,
                               "method": method, "params": params})
            return json.loads(service.handle_line(line))

        call("predict_eq1", {"target": 7, "mode": "write", "streams": [0]})
        call("advise", {"target": 7, "tasks": 2})
        health = call("health", {})["result"]
        tiers = health["tiers"]
        assert tiers["answers"] == {"1": 1, "2": 1, "3": 0}
        assert tiers["solves"] == 2  # the two warmup builds
        assert tiers["coalesced"] == 0
        assert tiers["store"]["entries"] == 2
        assert tiers["store"]["refreshes"] == 2

    def test_soak_report_counts_tiers(self):
        import json

        report = run_soak(requests=40, runs=3, fault=False)
        # Every tiered result is counted; health/ready carry no tier.
        untiered = sum(
            1 for r in report.responses
            if "tier" not in json.loads(r).get("result", {"tier": None})
        )
        assert sum(report.tiers.values()) == (
            report.ok + report.degraded - untiered
        )
        assert report.tiers.get(1, 0) > 0  # analytic answers flowed
        assert "tiers" in report.to_dict()
        assert "analytic" in report.render()


class TestWarmTargets:
    def test_cli_warm_spec_parses(self, host):
        from repro.cli.commands import _warm_targets

        assert _warm_targets(host, None) is None
        assert _warm_targets(host, "all") == tuple(host.node_ids)
        assert _warm_targets(host, "3,5") == (3, 5)

    def test_cli_warm_spec_rejects_junk(self, host):
        from repro.cli.commands import _warm_targets
        from repro.errors import ReproError

        for bad in ("seven", "", ",", "0,99"):
            with pytest.raises(ReproError):
                _warm_targets(host, bad)
