"""Single-flight coalescing: one solve per identical in-flight request."""

import threading
import time

import pytest

from repro.errors import RoutingError
from repro.rng import RngRegistry
from repro.service import AdvisoryBackend
from repro.service.soak import LogicalClock


@pytest.fixture()
def backend(host):
    return AdvisoryBackend(
        host, registry=RngRegistry(), runs=3, clock=LogicalClock()
    )


def _gate_solver(backend):
    """Make the solver block on an event, reporting when it starts."""
    started = threading.Event()
    release = threading.Event()
    real = backend._solve_model

    def gated(target, mode):
        started.set()
        assert release.wait(timeout=30), "test gate never released"
        return real(target, mode)

    backend._solve_model = gated
    return started, release


def _spin_until(predicate, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.002)


def test_identical_requests_share_one_solve(backend):
    started, release = _gate_solver(backend)
    results, errors = [], []

    def call():
        try:
            results.append(backend.advise(target=7, mode="write", tasks=4))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    leader = threading.Thread(target=call)
    leader.start()
    assert started.wait(timeout=30)
    followers = [threading.Thread(target=call) for _ in range(4)]
    for t in followers:
        t.start()
    # Every follower must be parked on the leader's flight before the
    # solve completes — coalesced counts them as they arrive.
    _spin_until(lambda: backend.coalesced == 4)
    release.set()
    leader.join(timeout=30)
    for t in followers:
        t.join(timeout=30)
    assert not errors
    assert backend.solves == 1
    assert backend.coalesced == 4
    assert all(r == results[0] for r in results)
    assert results[0]["tier"] == 3


def test_distinct_requests_do_not_cross_contaminate(backend):
    started, release = _gate_solver(backend)
    out = {}

    def call(mode):
        out[mode] = backend.predict_eq1(target=7, mode=mode, streams=[0, 1])

    writers = threading.Thread(target=call, args=("write",))
    readers = threading.Thread(target=call, args=("read",))
    writers.start()
    assert started.wait(timeout=30)
    readers.start()
    _spin_until(lambda: len(backend._inflight) == 2)
    release.set()
    writers.join(timeout=30)
    readers.join(timeout=30)
    assert backend.solves == 2
    assert backend.coalesced == 0
    assert out["write"]["mode"] == "write"
    assert out["read"]["mode"] == "read"
    assert out["write"]["predicted_gbps"] != out["read"]["predicted_gbps"]


def test_coalesced_failure_propagates_to_every_waiter(backend):
    started = threading.Event()
    release = threading.Event()

    def exploding(target, mode):
        started.set()
        assert release.wait(timeout=30)
        raise RoutingError("fabric partitioned mid-characterization")

    backend._solve_model = exploding
    caught = []

    def call():
        try:
            backend.classify(7, "write")
        except RoutingError as exc:
            caught.append(exc)

    threads = [threading.Thread(target=call) for _ in range(3)]
    threads[0].start()
    assert started.wait(timeout=30)
    for t in threads[1:]:
        t.start()
    _spin_until(lambda: backend.coalesced == 2)
    release.set()
    for t in threads:
        t.join(timeout=30)
    # Every caller — leader and waiters — got the same typed failure,
    # so the breaker counts each request honestly.
    assert len(caught) == 3
    assert all(c is caught[0] for c in caught)


def test_flight_bookkeeping_is_clean_after_both_outcomes(backend):
    backend.classify(7, "write")
    assert backend._inflight == {}

    def boom(target, mode):
        raise RoutingError("no route")

    backend._solve_model = boom
    with pytest.raises(RoutingError):
        backend.classify(7, "read")
    assert backend._inflight == {}
