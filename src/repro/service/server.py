"""The placement service: sync dispatch core + asyncio transports.

Layering, outermost in:

* :class:`AsyncPlacementServer` — TCP transport.  A bounded admission
  queue gives **explicit backpressure** (queue full → immediate typed
  ``overloaded`` rejection, never silent buffering); worker tasks apply
  **per-request deadlines** with real cancellation at the await point;
  :meth:`~AsyncPlacementServer.drain` stops admissions, finishes
  queued work, then closes — every in-flight request still gets its
  response.
* :func:`serve_stdio` — the strictly serial stdio transport: read a
  line, answer it, repeat.  Serial order makes the response stream a
  pure function of the request stream (the deterministic-twin property
  the smoke test pins).
* :class:`PlacementService` — the shared synchronous dispatch core:
  decode → validate → breaker gate → backend → encode.  Both
  transports and the chaos soak drive this one object, so robustness
  semantics cannot drift between them.

Breaker semantics (the degraded-mode contract):

* breaker **closed** → the solver is consulted.  A solver failure is
  counted; when the count trips the breaker *and* a last-good snapshot
  covers the request, the reply downgrades to the degraded answer in
  the same turn — otherwise a typed ``solver_error``.
* breaker **open** → the solver is not touched; last-good class-level
  answers are served (marked ``degraded: true``), or ``unavailable``
  when no snapshot covers the request.
* breaker **half-open** → exactly one probe request reaches the solver;
  success closes the breaker, failure re-opens it with a longer window.

``health`` and ``ready`` never touch the solver and are answered even
while the breaker is open or the server is draining.
"""

from __future__ import annotations

import asyncio
import sys
import time
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.obs import recorder as _obs
from repro.service.backend import SOLVER_FAILURES, AdvisoryBackend
from repro.service.breaker import CircuitBreaker
from repro.service.protocol import (
    decode_request,
    encode_message,
    encode_result_line,
    error_response,
    result_response,
    validate_params,
)
from repro.service.tiers import WireAnswer

__all__ = [
    "ServiceConfig",
    "PlacementService",
    "AsyncPlacementServer",
    "serve_stdio",
]

#: Pre-built per-tier counter names — an f-string per answered request
#: is measurable at tier-1 rates.
_TIER_COUNTERS = {t: f"service.tier.{t}.answers" for t in (1, 2, 3)}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for the service transports and robustness machinery."""

    host: str = "127.0.0.1"
    port: int = 8713
    queue_limit: int = 32  # bounded admission queue (backpressure)
    workers: int = 4  # concurrent solver-side workers (TCP transport)
    failure_threshold: int = 3  # consecutive solver failures that trip

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ServiceError(
                "invalid_params",
                f"queue_limit must be >= 1, got {self.queue_limit}",
            )
        if self.workers < 1:
            raise ServiceError(
                "invalid_params", f"workers must be >= 1, got {self.workers}"
            )


class PlacementService:
    """The synchronous dispatch core shared by every transport.

    Parameters
    ----------
    backend:
        The advisory backend (models, snapshots, warm sessions).
    breaker:
        Circuit breaker guarding the solver path (defaults to a
        3-failure breaker on the wall clock).
    clock:
        Monotonic seconds; injected by the soak for determinism.
    """

    def __init__(
        self,
        backend: AdvisoryBackend,
        breaker: CircuitBreaker | None = None,
        clock=time.monotonic,
    ) -> None:
        self.backend = backend
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.clock = clock
        # One clock rules the whole stack: staleness tags on tiered
        # answers tick on the service clock, so the soak's logical
        # clock makes same-seed twins byte-identical.
        backend.clock = clock
        self.draining = False
        self.requests = 0
        self.degraded_served = 0
        self.tier_answers: dict[int, int] = {1: 0, 2: 0, 3: 0}
        self.errors: dict[str, int] = {}

    # --- bookkeeping -------------------------------------------------------
    def _error(self, req_id, exc: ServiceError) -> dict:
        self.errors[exc.kind] = self.errors.get(exc.kind, 0) + 1
        _obs.count(f"service.error.{exc.kind}")
        return error_response(req_id, exc)

    def _note_tier(self, result: dict) -> None:
        """Account which tier answered (live and degraded results alike)."""
        tier = result.get("tier")
        if tier in self.tier_answers:
            self.tier_answers[tier] += 1
            _obs.count(_TIER_COUNTERS[tier])

    def health_payload(self) -> dict:
        """The ``health`` result: breaker, pools, counters."""
        payload = {
            "status": "degraded" if self.breaker.state != CircuitBreaker.CLOSED
            else "ok",
            "breaker": self.breaker.state,
            "breaker_trips": self.breaker.trip_count,
            "draining": self.draining,
            "machine": self.backend.machine.name,
            "requests": self.requests,
            "degraded_served": self.degraded_served,
            "errors": {k: self.errors[k] for k in sorted(self.errors)},
            "session_pool": self.backend.pool.stats(),
            "tiers": {
                "answers": {
                    str(t): self.tier_answers[t]
                    for t in sorted(self.tier_answers)
                },
                "coalesced": self.backend.coalesced,
                "solves": self.backend.solves,
                "max_staleness_s": self.backend.tier_max_staleness_s,
                "store": self.backend.tiers.stats(self.clock()),
            },
        }
        solver_pool = getattr(self.backend, "solver_pool", None)
        if solver_pool is not None:
            payload["solver_pool"] = solver_pool.stats()
        return payload

    def ready_payload(self) -> dict:
        """The ``ready`` result: warm and not draining."""
        ready = self.backend.warmed and not self.draining
        return {"ready": ready, "warmed": self.backend.warmed,
                "draining": self.draining}

    # --- dispatch ----------------------------------------------------------
    def _execute(self, method: str, params: dict) -> dict:
        if method == "advise":
            return self.backend.advise(**params)
        if method == "plan":
            return self.backend.plan(**params)
        if method == "predict_eq1":
            return self.backend.predict_eq1(**params)
        if method == "classify":
            return self.backend.classify(**params)
        raise ServiceError("method_not_found", f"unknown method {method!r}")

    def _degraded_or_error(self, req_id, method, params, exc: ServiceError):
        answer = self.backend.degraded_answer(method, params)
        if answer is not None:
            self.degraded_served += 1
            _obs.count("service.degraded_served")
            self._note_tier(answer)
            return result_response(req_id, answer)
        return self._error(req_id, exc)

    def handle_request(self, req_id, method: str, params, deadline_ms) -> dict:
        """Dispatch one decoded request; always returns a response dict."""
        self.requests += 1
        if _obs.enabled():
            _obs.count("service.requests")
            with _obs.span("service.request", method=method):
                return self._dispatch(req_id, method, params, deadline_ms)
        return self._dispatch(req_id, method, params, deadline_ms)

    def _dispatch(self, req_id, method: str, params, deadline_ms) -> dict:
        try:
            filled = validate_params(method, params)
        except ServiceError as exc:
            return self._error(req_id, exc)
        if method == "health":
            return result_response(req_id, self.health_payload())
        if method == "ready":
            return result_response(req_id, self.ready_payload())
        if self.draining:
            return self._error(
                req_id,
                ServiceError(
                    "shutting_down", "server is draining; not accepting work"
                ),
            )
        if deadline_ms is not None and deadline_ms <= 0:
            return self._error(
                req_id,
                ServiceError(
                    "deadline_exceeded",
                    f"deadline of {deadline_ms} ms expired before dispatch",
                    data={"deadline_ms": deadline_ms},
                ),
            )
        if not self.breaker.allow():
            return self._degraded_or_error(
                req_id, method, filled,
                ServiceError(
                    "unavailable",
                    f"circuit breaker is {self.breaker.state} and no "
                    f"last-good characterization covers this request",
                    data={"breaker": self.breaker.state},
                ),
            )
        try:
            result = self._execute(method, filled)
        except ServiceError as exc:
            # Caller mistake (e.g. unknown node): not a solver failure.
            return self._error(req_id, exc)
        except SOLVER_FAILURES as exc:
            self.breaker.record_failure()
            _obs.count("service.solver_failures")
            if self.breaker.state != CircuitBreaker.CLOSED:
                return self._degraded_or_error(
                    req_id, method, filled,
                    ServiceError(
                        "solver_error",
                        f"{type(exc).__name__}: {exc}",
                        data={"breaker": self.breaker.state},
                    ),
                )
            return self._error(
                req_id,
                ServiceError(
                    "solver_error",
                    f"{type(exc).__name__}: {exc}",
                    data={"breaker": self.breaker.state},
                ),
            )
        self.breaker.record_success()
        self._note_tier(result)
        return result_response(req_id, result)

    def handle_line(self, line: str) -> str:
        """One wire line in, one wire line out — never a traceback."""
        try:
            req_id, method, params, deadline_ms = decode_request(line)
        except ServiceError as exc:
            return encode_message(self._error(None, exc))
        try:
            response = self.handle_request(req_id, method, params, deadline_ms)
        except ServiceError as exc:
            response = self._error(req_id, exc)
        except Exception as exc:  # the sanitising wall: no tracebacks out
            response = self._error(
                req_id,
                ServiceError("internal_error", f"internal error: {type(exc).__name__}"),
            )
        result = response.get("result")
        if type(result) is WireAnswer:
            # Warm tiers carry their pre-encoded wire form: splice the
            # request id and live staleness instead of re-encoding —
            # byte-identical to encode_message on the same envelope.
            return encode_result_line(
                response["id"], result.wire_pre,
                result["staleness_s"], result.wire_post,
            )
        return encode_message(response)


def serve_stdio(service: PlacementService, stdin=None, stdout=None) -> int:
    """Serve line requests serially from ``stdin`` to ``stdout``.

    Blank lines are skipped; EOF ends the loop.  Returns the number of
    requests answered.  Strictly serial, so the response stream is a
    deterministic function of the request stream — and when the service
    runs on a :class:`~repro.service.soak.LogicalClock` (the CLI's
    stdio mode does), the clock ticks once per answered line, so the
    ``staleness_s`` tags are a pure function of the request stream too.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    advance = getattr(service.clock, "advance", None)
    answered = 0
    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        stdout.write(service.handle_line(line))
        stdout.flush()
        answered += 1
        if advance is not None:
            advance()
    return answered


class AsyncPlacementServer:
    """The TCP transport: bounded admission, deadlines, graceful drain."""

    def __init__(
        self, service: PlacementService, config: ServiceConfig | None = None
    ) -> None:
        self.service = service
        self.config = config if config is not None else ServiceConfig()
        self._queue: asyncio.Queue | None = None
        self._workers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self.rejected = 0

    @property
    def port(self) -> int:
        """The bound port (useful when configured with port 0)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    # --- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and launch the worker pool."""
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._workers = [
            asyncio.create_task(self._worker(), name=f"service-worker-{i}")
            for i in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish queued work, close.

        After ``drain`` returns, every admitted request has been
        answered, every worker has exited, and the listener is closed.
        """
        self.service.draining = True
        if self._server is not None:
            self._server.close()
        if self._queue is not None:
            await self._queue.join()
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._server is not None:
            await self._server.wait_closed()

    # --- data path ---------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()  # one response write at a time per client
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                await self._admit(line, writer, lock)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _admit(self, line, writer, lock) -> None:
        """Bounded admission: reject instantly when the queue is full."""
        assert self._queue is not None
        if self.service.draining:
            await self._reply(
                writer, lock,
                self._typed_line(line, "shutting_down",
                                 "server is draining; not accepting work"),
            )
            return
        item = (line, writer, lock, self.service.clock())
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.rejected += 1
            _obs.count("service.rejected")
            await self._reply(
                writer, lock,
                self._typed_line(
                    line, "overloaded",
                    f"admission queue full "
                    f"({self.config.queue_limit} requests); retry later",
                ),
            )

    def _typed_line(self, line: str, kind: str, message: str) -> str:
        """A typed error line that still echoes the request id if parseable."""
        try:
            req_id, _method, _params, _deadline = decode_request(line)
        except ServiceError:
            req_id = None
        return encode_message(
            self.service._error(req_id, ServiceError(kind, message))
        )

    async def _reply(self, writer, lock, payload: str) -> None:
        async with lock:
            try:
                writer.write(payload.encode("utf-8"))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to tell it

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            line, writer, lock, admitted_at = await self._queue.get()
            try:
                try:
                    payload = await self._answer(line, admitted_at)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # keep the worker alive, always
                    payload = self._typed_line(
                        line, "internal_error",
                        f"internal error: {type(exc).__name__}",
                    )
                await self._reply(writer, lock, payload)
            finally:
                self._queue.task_done()

    async def _answer(self, line: str, admitted_at: float) -> str:
        """Execute one request off-loop, enforcing its deadline."""
        try:
            _req_id, _method, params, deadline_ms = decode_request(line)
        except ServiceError:
            deadline_ms = None
        if deadline_ms is None:
            return await asyncio.to_thread(self.service.handle_line, line)
        waited_s = self.service.clock() - admitted_at
        remaining_s = deadline_ms / 1000.0 - waited_s
        if remaining_s <= 0:
            return self._typed_line(
                line, "deadline_exceeded",
                f"deadline of {deadline_ms} ms expired while queued",
            )
        try:
            return await asyncio.wait_for(
                asyncio.to_thread(self.service.handle_line, line),
                timeout=remaining_s,
            )
        except asyncio.TimeoutError:
            _obs.count("service.deadline_cancelled")
            solver_pool = getattr(self.service.backend, "solver_pool", None)
            if solver_pool is not None:
                # The abandoned solve may still be running in a fabric
                # worker; the future is dropped, the slot stays busy
                # until that solve finishes, and the pool accounts it.
                solver_pool.note_abandoned()
            return self._typed_line(
                line, "deadline_exceeded",
                f"deadline of {deadline_ms} ms expired mid-solve; "
                f"request cancelled",
            )
