"""Deterministic, named random-number streams.

The simulator is stochastic (run-to-run measurement jitter, OS noise,
multi-stream contention variability) but every experiment must be exactly
reproducible.  :class:`RngRegistry` derives one independent
:class:`numpy.random.Generator` per *named* purpose from a single root seed
using ``numpy``'s :class:`~numpy.random.SeedSequence` spawning, so

* adding a new consumer never perturbs existing streams, and
* the same (seed, name) pair always yields the same sequence.

Names are free-form strings, conventionally ``"<subsystem>/<detail>"``,
e.g. ``"bench/stream/cpu7-mem4/run13"``.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry", "DEFAULT_SEED"]

#: Root seed used by every experiment unless overridden.  Chosen once and
#: recorded so EXPERIMENTS.md numbers are reproducible bit-for-bit.
DEFAULT_SEED = 20130701  # ICPP 2013 was held in July.


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name (crc32 is stable across runs)."""
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Factory of independent named random generators.

    Parameters
    ----------
    seed:
        Root seed.  Two registries built with the same seed hand out
        identical streams for identical names, irrespective of request
        order.

    Examples
    --------
    >>> r = RngRegistry(7)
    >>> a = r.stream("noise/run0").standard_normal(3)
    >>> b = RngRegistry(7).stream("noise/run0").standard_normal(3)
    >>> bool((a == b).all())
    True
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this registry derives every stream from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for ``name``.

        Each call returns a *new* generator positioned at the start of the
        same underlying sequence, so callers that need to continue a
        sequence must hold on to the generator they were given.
        """
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(_name_key(name),))
        return np.random.Generator(np.random.PCG64(seq))

    def child(self, name: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's.

        Useful to give a sub-experiment its own namespace:
        ``registry.child("fig5").stream("tcp/run0")``.
        """
        return RngRegistry(self._seed ^ _name_key(name) ^ 0x9E3779B9)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self._seed})"
