"""Property: a journal cut at ANY byte offset resumes cleanly.

The resume contract (ISSUE 7) is all-offsets, not just record
boundaries: ``kill -9`` can stop a write after any byte, so for every
prefix of a valid journal the store must either resume with exactly the
complete records (truncating the torn tail) or — when a *complete*
record is corrupted in place — raise :class:`JournalError` naming the
record.  Silently wrong results are never an option.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.errors import JournalError
from repro.journal import JOURNAL_FILENAME, JOURNAL_MAGIC, RunJournal, scan_journal
from repro.journal.store import _HEADER, _record_bytes

META = {"command": "prop", "seed": 7}


def _build_journal(tmp_path, n_units):
    with RunJournal(tmp_path, META) as journal:
        for i in range(n_units):
            journal.append(("unit", i), result={"value": i, "sq": i * i})
    path = tmp_path / JOURNAL_FILENAME
    data = path.read_bytes()
    # Byte offset just past each complete record, including the meta record.
    boundaries = [len(JOURNAL_MAGIC)]
    boundaries.append(boundaries[-1] + len(_record_bytes(META)))
    for i in range(n_units):
        record = _record_bytes({"key": ("unit", i), "result": {"value": i, "sq": i * i}})
        boundaries.append(boundaries[-1] + len(record))
    assert boundaries[-1] == len(data)
    return path, data, boundaries


@settings(max_examples=60, deadline=None)
@given(data=st.data(), n_units=st.integers(min_value=0, max_value=4))
def test_truncated_journal_resumes_cleanly(tmp_path_factory, data, n_units):
    tmp_path = tmp_path_factory.mktemp("journal")
    path, whole, boundaries = _build_journal(tmp_path, n_units)
    cut = data.draw(st.integers(min_value=0, max_value=len(whole)))
    path.write_bytes(whole[:cut])

    # How many data records survive the cut intact (meta is boundaries[1]).
    complete = sum(1 for b in boundaries[2:] if cut >= b)

    with RunJournal(tmp_path, META) as journal:
        # A cut before the end of the meta record starts the run over.
        assert journal.resumed_units == (complete if cut >= boundaries[1] else 0)
        assert journal.truncated_tail == (cut != 0 and cut not in boundaries)
        # Finish the run: re-append every unit the cut lost.
        for i in range(journal.resumed_units, n_units):
            journal.append(("unit", i), result={"value": i, "sq": i * i})

    # The resumed journal is byte-identical to the uninterrupted one:
    # same records, same order, same deterministic pickles.
    assert path.read_bytes() == whole
    records, _, torn = scan_journal(path)
    assert not torn and len(records) == n_units + 1


@settings(max_examples=60, deadline=None)
@given(data=st.data(), n_units=st.integers(min_value=1, max_value=4))
def test_corrupt_record_raises_naming_it(tmp_path_factory, data, n_units):
    tmp_path = tmp_path_factory.mktemp("journal")
    path, whole, boundaries = _build_journal(tmp_path, n_units)

    # Flip one byte inside a complete record's payload (past its header):
    # the length field still matches, so the record parses as complete
    # and the CRC must catch the damage.
    index = data.draw(st.integers(min_value=0, max_value=n_units))
    start = boundaries[index] + _HEADER.size
    end = boundaries[index + 1]
    offset = data.draw(st.integers(min_value=start, max_value=end - 1))
    flipped = bytearray(whole)
    flipped[offset] ^= data.draw(st.integers(min_value=1, max_value=255))
    path.write_bytes(bytes(flipped))

    with pytest.raises(JournalError, match=rf"record {index} "):
        scan_journal(path)
    with pytest.raises(JournalError):
        RunJournal(tmp_path, META)
