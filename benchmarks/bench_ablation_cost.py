"""A3 — ablation: characterization cost reduction via representatives."""


def test_ablation_cost(run_paper_experiment):
    result = run_paper_experiment("a3")
    assert result.data["cost_reduction"] >= 0.5
