"""Machine builders."""

import pytest

from repro.errors import TopologyError
from repro.topology.builders import (
    amd_4s8n,
    amd_8s8n,
    hp_blade_32n,
    intel_4s4n,
    magny_cours_4p,
    parametric_machine,
    reference_host,
)
from repro.topology.distance import hop_matrix
from repro.units import GiB


class TestReferenceHost:
    def test_shape(self, host):
        assert host.n_nodes == 8
        assert host.n_cores == 32
        assert len(host.packages) == 4

    def test_devices_attached_to_node7(self, host):
        assert host.devices["nic"].node_id == 7
        assert host.devices["ssd"].node_id == 7

    def test_without_devices(self, bare_host):
        assert bare_host.devices == {}

    def test_node0_holds_the_os(self, host):
        assert host.node(0).os_resident_bytes == int(2.5 * GiB)
        assert host.node(3).os_resident_bytes == int(0.25 * GiB)

    def test_calibrated_write_classes(self, host):
        values = {i: host.dma_path_gbps(i, 7) for i in host.node_ids}
        assert values[0] == values[1] == values[4] == values[5]
        assert values[2] == values[3]
        assert values[6] > values[0] > values[2]

    def test_calibrated_read_classes(self, host):
        values = {i: host.dma_path_gbps(7, i) for i in host.node_ids}
        assert values[2] > values[0]  # the paper's reversal
        assert values[4] < values[0]  # node 4 is the outlier


class TestMagnyCours:
    @pytest.mark.parametrize("variant", ["a", "b", "c", "d"])
    def test_variants_build_and_connect(self, variant):
        machine = magny_cours_4p(variant)
        assert machine.n_nodes == 8
        hop_matrix(machine)  # raises if disconnected

    def test_variants_are_distinct(self):
        matrices = [hop_matrix(magny_cours_4p(v)).tolist() for v in "abcd"]
        assert len({str(m) for m in matrices}) == 4

    def test_unknown_variant_rejected(self):
        with pytest.raises(TopologyError):
            magny_cours_4p("z")


class TestTable1Machines:
    def test_intel_full_mesh(self):
        machine = intel_4s4n()
        assert machine.n_nodes == 4
        assert (hop_matrix(machine) <= 1).all()

    def test_amd_4s8n_shape(self):
        machine = amd_4s8n()
        assert machine.n_nodes == 8
        assert len(machine.packages) == 4

    def test_amd_8s8n_is_single_die_packages(self):
        machine = amd_8s8n()
        assert all(len(p.node_ids) == 1 for p in machine.packages.values())

    def test_blade_shape(self):
        machine = hp_blade_32n()
        assert machine.n_nodes == 32
        assert len(machine.packages) == 8


class TestParametric:
    def test_ring_connects(self):
        machine = parametric_machine(5, nodes_per_package=2)
        assert machine.n_nodes == 10
        hop_matrix(machine)

    def test_single_package(self):
        machine = parametric_machine(1, nodes_per_package=2)
        assert machine.n_nodes == 2

    def test_two_packages_single_link(self):
        machine = parametric_machine(2)
        hop_matrix(machine)

    def test_chords_shorten_paths(self):
        plain = hop_matrix(parametric_machine(8, nodes_per_package=1))
        chorded = hop_matrix(parametric_machine(8, nodes_per_package=1, chords=2))
        assert chorded.max() < plain.max()

    def test_rejects_zero_packages(self):
        with pytest.raises(TopologyError):
            parametric_machine(0)
