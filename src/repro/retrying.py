"""Seeded exponential backoff shared by every retry loop in the library.

One policy, two very different consumers:

* the degraded-mode flow simulator
  (:class:`~repro.faults.degraded.DegradedFlowRunner`) parks blocked
  flows and retries them after a backoff delay;
* the placement-advisory service's circuit breaker
  (:class:`~repro.service.breaker.CircuitBreaker`) holds its OPEN state
  for a backoff window before admitting a half-open probe.

Both need the same contract: the delay for attempt ``k`` is
``base_delay_s * multiplier**k``, optionally jittered by a *seeded*
generator so that a fixed seed yields a bit-identical delay sequence.
The jitter draw is a single ``rng.random()`` per delay — the property
tests pin that existing draw sequences stay bit-identical to the
pre-extraction :mod:`repro.faults.degraded` implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with a bounded budget.

    A blocked consumer waits ``base_delay_s * multiplier**attempt``
    seconds (jittered by ``±jitter`` relative, drawn from the caller's
    seeded generator) before re-checking; after ``max_retries`` failed
    checks it gives up.  Consumers that never give up (the service's
    circuit breaker) simply ignore ``max_retries``.
    """

    max_retries: int = 4
    base_delay_s: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s <= 0 or self.multiplier < 1.0:
            raise FaultError("backoff delay must be positive and non-shrinking")
        if not 0.0 <= self.jitter < 1.0:
            raise FaultError(f"jitter must be in [0, 1), got {self.jitter!r}")

    def delay_s(self, attempt: int, rng: np.random.Generator | None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        delay = self.base_delay_s * self.multiplier**attempt
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(2.0 * rng.random() - 1.0)
        return delay
