"""Eq. 1 mixture predictor."""

import pytest

from repro.core.iomodel import IOModelBuilder
from repro.core.predictor import MixturePredictor, PredictionReport
from repro.errors import ModelError


@pytest.fixture()
def read_model(host, registry):
    return IOModelBuilder(host, registry=registry, runs=10).build(7, "read")


@pytest.fixture()
def rdma_read_values(read_model):
    # Synthetic operation values with the paper's class structure.
    by_rank = {1: 22.0, 2: 21.998, 3: 18.036, 4: 16.1}
    return {n: by_rank[read_model.class_of(n).rank] for n in read_model.values}


@pytest.fixture()
def predictor(read_model, rdma_read_values):
    return MixturePredictor(read_model, rdma_read_values)


class TestPrediction:
    def test_paper_worked_example(self, predictor):
        # 50 % class 2 + 50 % class 3 -> 20.017 Gbps.
        assert predictor.predict_streams([2, 2, 0, 0]) == pytest.approx(20.017)

    def test_fraction_api_matches_stream_api(self, predictor, read_model):
        by_fraction = predictor.predict_fractions(
            {read_model.class_of(2).rank: 0.5, read_model.class_of(0).rank: 0.5}
        )
        assert by_fraction == pytest.approx(predictor.predict_streams([2, 0]))

    def test_single_class_prediction_is_class_avg(self, predictor):
        assert predictor.predict_streams([2, 2]) == pytest.approx(21.998)

    def test_unnormalised_fractions_accepted(self, predictor, read_model):
        rank = read_model.class_of(2).rank
        assert predictor.predict_fractions({rank: 7.0}) == pytest.approx(21.998)

    def test_class_avg_lookup(self, predictor, read_model):
        assert predictor.class_avg(read_model.class_of(0).rank) == pytest.approx(18.036)
        with pytest.raises(ModelError):
            predictor.class_avg(99)

    def test_empty_streams_rejected(self, predictor):
        with pytest.raises(ModelError):
            predictor.predict_streams([])

    def test_missing_operation_values_rejected(self, read_model):
        with pytest.raises(ModelError):
            MixturePredictor(read_model, {0: 1.0})


class TestValidation:
    def test_report_error_metric(self):
        report = PredictionReport(predicted_gbps=20.017, measured_gbps=19.415)
        assert report.relative_error == pytest.approx(0.031, abs=0.001)
        assert "3.1 %" in report.render()

    def test_validate(self, predictor):
        report = predictor.validate(19.415, [2, 2, 0, 0])
        assert report.predicted_gbps == pytest.approx(20.017)
        assert report.relative_error == pytest.approx(0.031, abs=0.001)

    def test_non_positive_measurement_rejected(self, predictor):
        with pytest.raises(ModelError):
            predictor.validate(0.0, [2, 0])
