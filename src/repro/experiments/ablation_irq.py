"""A5 — IRQ placement ablation (§III-B2 / §IV-B1).

The paper pins device interrupts to the device-local node and then
observes that node 6 often beats node 7 for TCP because node 7 carries
the IRQ load.  This ablation moves the NIC's interrupts to node 0 and
shows the effect following them: node 7 recovers, node 0 degrades —
i.e. the "neighbour beats local" anomaly is an IRQ-placement artifact,
exactly as the paper argues.
"""

from __future__ import annotations

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.devices.standard import attach_device, reference_nic, reference_ssd_array
from repro.experiments.common import check, default_registry
from repro.experiments.registry import ExperimentResult
from repro.topology.builders import reference_host

TITLE = "Ablation: the node-6-beats-node-7 effect follows IRQ placement"


def _tcp_send(machine, registry, node: int, tag: str) -> float:
    runner = FioRunner(machine, registry=registry)
    job = FioJob(name=f"a5-{tag}-n{node}", engine="tcp", rw="send",
                 numjobs=4, cpunodebind=node)
    return runner.run(job).aggregate_gbps


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """TCP send on nodes {0, 6, 7} under two IRQ placements."""
    registry = default_registry(registry)

    tuned = reference_host()  # IRQs on node 7 (the paper's tuning)
    moved = reference_host(with_devices=False)
    attach_device(moved, "nic", reference_nic(node_id=7, irq_node=0))
    attach_device(moved, "ssd", reference_ssd_array(node_id=7))

    nodes = (0, 6, 7)
    tuned_bw = {n: _tcp_send(tuned, registry, n, "tuned") for n in nodes}
    moved_bw = {n: _tcp_send(moved, registry.child("moved"), n, "moved")
                for n in nodes}

    checks = (
        check(
            "IRQs on node 7: node 6 beats node 7 (the paper's observation)",
            tuned_bw[6] > tuned_bw[7],
            f"node6 {tuned_bw[6]:.2f} vs node7 {tuned_bw[7]:.2f} Gbps",
        ),
        check(
            "IRQs moved to node 0: node 7 recovers to node-6 level",
            moved_bw[7] >= moved_bw[6] * 0.995,
            f"node7 {moved_bw[7]:.2f} vs node6 {moved_bw[6]:.2f} Gbps",
        ),
        check(
            "the penalty follows the IRQs to node 0",
            moved_bw[0] < tuned_bw[0] * 0.995,
            f"node0: {tuned_bw[0]:.2f} -> {moved_bw[0]:.2f} Gbps",
        ),
    )
    lines = ["TCP send aggregate (4 streams) under two IRQ placements:"]
    lines.append(f"{'binding':>8s}{'irq@node7':>12s}{'irq@node0':>12s}")
    for n in nodes:
        lines.append(f"{'node ' + str(n):>8s}{tuned_bw[n]:>11.2f} {moved_bw[n]:>11.2f}")
    return ExperimentResult(
        exp_id="a5", title=TITLE, text="\n".join(lines),
        data={"tuned": tuned_bw, "moved": moved_bw},
        checks=checks,
    )
