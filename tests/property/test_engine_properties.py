"""Property-based invariants of the fio device engines."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.rng import RngRegistry
from repro.topology.builders import reference_host
from repro.units import GB

_HOST = reference_host()
_RUNNER = FioRunner(_HOST, RngRegistry())

_ENGINE_RW = [
    ("tcp", "send"), ("tcp", "recv"),
    ("rdma", "write"), ("rdma", "read"),
    ("libaio", "write"), ("libaio", "read"),
]

_CAPS = {
    ("tcp", "send"): 20.5,
    ("tcp", "recv"): 21.4,
    ("rdma", "write"): 23.3,
    ("rdma", "read"): 22.0,
    ("libaio", "write"): 29.0,
    ("libaio", "read"): 34.7,
}

jobs = st.builds(
    lambda engine_rw, numjobs, node, size_gb: FioJob(
        name=f"prop-{engine_rw[0]}-{engine_rw[1]}-{numjobs}-{node}-{size_gb}",
        engine=engine_rw[0],
        rw=engine_rw[1],
        numjobs=numjobs,
        cpunodebind=node,
        size_bytes=size_gb * GB,
    ),
    engine_rw=st.sampled_from(_ENGINE_RW),
    numjobs=st.integers(min_value=1, max_value=16),
    node=st.sampled_from(_HOST.node_ids),
    size_gb=st.integers(min_value=1, max_value=400),
)


@given(jobs)
@settings(max_examples=60, deadline=None)
def test_aggregate_within_physical_bounds(job):
    result = _RUNNER.run(job)
    cap = _CAPS[(job.engine, job.rw)]
    assert 0 < result.aggregate_gbps <= cap * 1.15  # cap + noise headroom


@given(jobs)
@settings(max_examples=60, deadline=None)
def test_aggregate_is_sum_of_streams(job):
    result = _RUNNER.run(job)
    assert result.aggregate_gbps == sum(result.per_stream_gbps.values())
    assert len(result.per_stream_gbps) == job.numjobs


@given(jobs)
@settings(max_examples=40, deadline=None)
def test_duration_consistent_with_rates(job):
    result = _RUNNER.run(job)
    slowest = min(result.per_stream_gbps.values())
    expected = job.size_bytes * 8 / 1e9 / slowest
    assert result.duration_s <= expected * 1.001
    fastest = max(result.per_stream_gbps.values())
    assert result.duration_s >= job.size_bytes * 8 / 1e9 / fastest * 0.999


@given(jobs)
@settings(max_examples=30, deadline=None)
def test_determinism(job):
    a = _RUNNER.run(job).aggregate_gbps
    b = FioRunner(_HOST, RngRegistry()).run(job).aggregate_gbps
    assert a == b


@given(
    st.sampled_from(_ENGINE_RW),
    st.sampled_from([n for n in _HOST.node_ids]),
)
@settings(max_examples=40, deadline=None)
def test_class3_placement_never_beats_class1(engine_rw, node):
    """Nodes {2,3} (write) / node 4 (read) must not beat node 6."""
    engine, rw = engine_rw
    direction_bad = {"write": 2, "read": 4}
    job_kwargs = dict(engine=engine, rw=rw, numjobs=4)
    direction = FioJob(name="d", **job_kwargs, cpunodebind=0).direction
    bad_node = direction_bad[direction]
    good = _RUNNER.run(
        FioJob(name=f"g-{engine}-{rw}", **job_kwargs, cpunodebind=6)
    ).aggregate_gbps
    bad = _RUNNER.run(
        FioJob(name=f"b-{engine}-{rw}", **job_kwargs, cpunodebind=bad_node)
    ).aggregate_gbps
    assert bad < good
