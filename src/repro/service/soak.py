"""The deterministic chaos soak: scripted traffic under a live fault plan.

The soak drives the *exact* production dispatch path
(:class:`~repro.service.server.PlacementService.handle_line`) with a
scripted request trace while a :class:`~repro.faults.plan.FaultPlan`
fires mid-stream: the device node's cables all fail at once, the
fabric partitions, Algorithm 1 characterization becomes unsolvable, the
circuit breaker trips, degraded class-level answers flow, the cables
come back, a half-open probe succeeds, and the breaker closes.

Three properties are checked (and pinned by tests and
``scripts/service_smoke.sh``):

* **totality** — every scripted request resolves to *exactly one* of
  {result, degraded result, typed error}; nothing raises, nothing is
  dropped, nothing answered twice;
* **determinism** — time is a logical clock, every random draw comes
  from named :class:`~repro.rng.RngRegistry` streams, so two runs with
  the same seed produce byte-identical response streams;
* **recovery** — with the fault window enabled, the breaker must trip
  and must be closed again by the end of the trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.faults.events import FaultEvent, LinkDegrade, LinkFail
from repro.faults.plan import FaultPlan
from repro.retrying import RetryPolicy
from repro.rng import DEFAULT_SEED, RngRegistry
from repro.service.backend import AdvisoryBackend
from repro.service.breaker import CircuitBreaker
from repro.service.protocol import PROTOCOL_VERSION, TIER_NAMES
from repro.service.server import PlacementService
from repro.topology.builders import reference_host
from repro.topology.machine import Machine

__all__ = [
    "LogicalClock",
    "SoakReport",
    "ConvergenceReport",
    "build_soak_plan",
    "build_derate_plan",
    "run_soak",
    "run_convergence_soak",
]

#: Logical seconds between consecutive scripted requests.
TICK_S = 0.1


class LogicalClock:
    """A monotonic clock the soak advances by hand — zero wall-time."""

    def __init__(self, t0: float = 0.0) -> None:
        self.t = t0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float = TICK_S) -> None:
        self.t += dt


def build_soak_plan(
    machine: Machine, victim: int, at_s: float, until_s: float
) -> FaultPlan:
    """Fail every cable touching ``victim`` for ``[at_s, until_s)``.

    Isolating the device node partitions the DMA fabric, which is the
    harshest fault the advisory path can face: every characterization
    attempt fails until the window closes.
    """
    cables = sorted(
        {tuple(sorted(ends)) for ends in machine.links if victim in ends}
    )
    return FaultPlan([
        FaultEvent(LinkFail(a, b), at_s=at_s, until_s=until_s)
        for a, b in cables
    ])


def build_derate_plan(
    machine: Machine, victim: int, at_s: float, until_s: float,
    factor: float = 0.4,
) -> FaultPlan:
    """Derate every cable touching ``victim`` (both directions).

    Unlike :func:`build_soak_plan` the fabric stays connected:
    characterization still *succeeds* on the derated machine — it just
    measures collapsed bandwidths — which is exactly the fault shape
    that exercises the drift watch and the repair loop rather than the
    circuit breaker.
    """
    cables = sorted(
        {tuple(sorted(ends)) for ends in machine.links if victim in ends}
    )
    return FaultPlan([
        FaultEvent(LinkDegrade(src, dst, factor), at_s=at_s, until_s=until_s)
        for a, b in cables
        for src, dst in ((a, b), (b, a))
    ])


def _request(req_id: int, method: str, params: dict | None = None) -> str:
    msg = {"jsonrpc": PROTOCOL_VERSION, "id": req_id, "method": method}
    if params is not None:
        msg["params"] = params
    return json.dumps(msg, sort_keys=True, separators=(",", ":"))


def build_traffic(
    registry: RngRegistry, machine: Machine, target: int, requests: int
) -> list[str]:
    """A scripted request trace: the full mix, including hostile lines.

    Drawn from one named registry stream, so a seed pins the trace
    bit-for-bit.  Roughly 70 % well-formed solver-backed calls, the
    rest split across health checks, schema violations, unknown
    methods, zero deadlines and outright parse junk — the soak must
    answer *all* of them exactly once.
    """
    rng = registry.stream("service/soak/traffic")
    nodes = list(machine.node_ids)
    lines: list[str] = []
    for i in range(requests):
        roll = int(rng.integers(100))
        if roll < 30:
            lines.append(_request(i, "advise", {
                "target": target,
                "mode": "write" if int(rng.integers(2)) else "read",
                "tasks": int(rng.integers(1, 9)),
                "avoid_irq_node": bool(int(rng.integers(2))),
            }))
        elif roll < 45:
            streams = [nodes[int(rng.integers(len(nodes)))]
                       for _ in range(int(rng.integers(1, 5)))]
            lines.append(_request(i, "predict_eq1", {
                "target": target, "mode": "read", "streams": streams,
            }))
        elif roll < 55:
            lines.append(_request(i, "classify", {
                "target": target,
                "mode": "write" if int(rng.integers(2)) else "read",
            }))
        elif roll < 70:
            lines.append(_request(i, "plan", {
                "write_weight": round(float(rng.random()), 3),
            }))
        elif roll < 80:
            meta = ("health", "ready", "metrics")[int(rng.integers(3))]
            lines.append(_request(i, meta))
        elif roll < 86:  # schema violation: bad mode / zero tasks
            lines.append(_request(i, "advise", {
                "target": target, "mode": "sideways", "tasks": 0,
            }))
        elif roll < 90:  # unknown method
            lines.append(_request(i, "evacuate"))
        elif roll < 95:  # already-expired deadline
            lines.append(_request(i, "classify", {
                "target": target, "mode": "write", "deadline_ms": 0,
            }))
        else:  # parse junk
            lines.append('{"jsonrpc": "2.0", "id": %d, oops' % i)
    return lines


@dataclass
class SoakReport:
    """Everything one soak run observed, JSON-able and renderable."""

    seed: int
    requests: int
    fault_window: tuple[float, float] | None
    plan_text: str
    responses: list[str] = field(default_factory=list)
    ok: int = 0
    degraded: int = 0
    tiers: dict[int, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    breaker_transitions: list[tuple[float, str]] = field(default_factory=list)
    final_breaker_state: str = CircuitBreaker.CLOSED
    #: Live-plane counter snapshot at end of run (sorted keys).
    counters: dict[str, int] = field(default_factory=dict)
    #: Drift-watch summary (``DriftWatch.stats()``), ``None`` if disabled.
    drift: "dict | None" = None

    @property
    def answered(self) -> int:
        """Total responses (must equal ``requests`` — totality)."""
        return self.ok + self.degraded + sum(self.errors.values())

    @property
    def tripped(self) -> bool:
        """Did the breaker ever open during the run?"""
        return any(s == CircuitBreaker.OPEN for _, s in self.breaker_transitions)

    @property
    def recovered(self) -> bool:
        """Did the breaker close again after tripping?"""
        return self.tripped and self.final_breaker_state == CircuitBreaker.CLOSED

    def to_dict(self) -> dict:
        """JSON-able summary (the ``--json`` CLI output)."""
        return {
            "seed": self.seed,
            "requests": self.requests,
            "answered": self.answered,
            "ok": self.ok,
            "degraded": self.degraded,
            "tiers": {str(t): self.tiers[t] for t in sorted(self.tiers)},
            "errors": {k: self.errors[k] for k in sorted(self.errors)},
            "fault_window": list(self.fault_window) if self.fault_window else None,
            "plan": self.plan_text,
            "breaker_transitions": [
                [round(t, 6), s] for t, s in self.breaker_transitions
            ],
            "final_breaker_state": self.final_breaker_state,
            "tripped": self.tripped,
            "recovered": self.recovered,
            "counters": self.counters,
            "drift": self.drift,
            # The wire-level response stream itself: the twin-run smoke
            # diff compares these byte-for-byte.
            "responses": [r.rstrip("\n") for r in self.responses],
        }

    def render(self) -> str:
        """Deterministic human summary."""
        out = [
            f"chaos soak: {self.requests} scripted requests, seed {self.seed}",
            f"  fault plan    : {self.plan_text}",
            f"  answered      : {self.answered} "
            f"(ok {self.ok}, degraded {self.degraded}, "
            f"errors {sum(self.errors.values())})",
            "  tiers         : " + ", ".join(
                f"{TIER_NAMES[t]} {self.tiers.get(t, 0)}" for t in (1, 2, 3)
            ),
        ]
        for kind in sorted(self.errors):
            out.append(f"    error[{kind:18s}]: {self.errors[kind]}")
        for t, s in self.breaker_transitions:
            out.append(f"  breaker @ {t:7.2f} s -> {s}")
        out.append(
            f"  breaker final : {self.final_breaker_state} "
            f"(tripped={str(self.tripped).lower()}, "
            f"recovered={str(self.recovered).lower()})"
        )
        if self.drift is not None:
            out.append(
                f"  drift watch   : {self.drift['events']} event(s) across "
                f"{self.drift['watched']} watched (target,mode) pair(s)"
            )
        return "\n".join(out)


def run_soak(
    machine: Machine | None = None,
    requests: int = 120,
    seed: int = DEFAULT_SEED,
    runs: int = 5,
    fault: bool = True,
    failure_threshold: int = 2,
) -> SoakReport:
    """Run the scripted chaos soak and return its report.

    The fault window spans the middle ~35 % of the trace; with
    ``fault=False`` the same trace runs against a healthy host (the
    smoke script diffs the two to prove the degraded path is the only
    divergence).
    """
    if machine is None:
        machine = reference_host()
    registry = RngRegistry(seed)
    device_nodes = sorted({d.node_id for d in machine.devices.values()})
    target = device_nodes[0] if device_nodes else machine.node_ids[-1]

    clock = LogicalClock()
    backend = AdvisoryBackend(machine, registry=registry, runs=runs)
    breaker = CircuitBreaker(
        failure_threshold=failure_threshold,
        backoff=RetryPolicy(
            max_retries=0, base_delay_s=0.8, multiplier=2.0, jitter=0.25
        ),
        rng=registry.stream("service/soak/breaker-jitter"),
        clock=clock,
    )
    service = PlacementService(backend, breaker=breaker, clock=clock)
    backend.warm((target,))  # the last-good snapshots degraded mode serves

    duration = requests * TICK_S
    window = (round(0.25 * duration, 3), round(0.5 * duration, 3))
    plan = (
        build_soak_plan(machine, target, *window) if fault else FaultPlan()
    )
    report = SoakReport(
        seed=seed,
        requests=requests,
        fault_window=window if fault else None,
        plan_text=plan.describe(),
    )

    traffic = build_traffic(registry, machine, target, requests)
    active: frozenset = frozenset()
    for line in traffic:
        now = clock()
        live = frozenset(f.describe() for f in plan.topology_faults_at(now))
        if live != active:
            if live:
                backend.set_machine(plan.apply(machine, at_s=now))
            else:
                backend.restore_machine()
            active = live
        response = service.handle_line(line)
        report.responses.append(response)
        payload = json.loads(response)
        if "error" in payload:
            kind = payload["error"]["kind"]
            report.errors[kind] = report.errors.get(kind, 0) + 1
        else:
            tier = payload["result"].get("tier")
            if tier is not None:
                report.tiers[tier] = report.tiers.get(tier, 0) + 1
            if payload["result"].get("degraded"):
                report.degraded += 1
            else:
                report.ok += 1
        clock.advance()
    report.breaker_transitions = list(breaker.transitions)
    report.final_breaker_state = breaker.state
    service._drain_obs()  # fold the tail of the trace before reading
    report.counters = {
        k: service.live.counters[k] for k in sorted(service.live.counters)
    }
    if service.drift is not None:
        report.drift = service.drift.stats()
    return report


@dataclass
class ConvergenceReport:
    """What the self-healing convergence soak observed, JSON-able.

    The story the numbers must tell: derate fires → the supervisor
    quarantines the blast radius → requests get labelled ``repairing``
    answers → background repair re-characterizes and promotes → the
    service is back on tiers 1–2 *under the faulted machine* → the
    fault clears → the faulted-era entries are re-quarantined, repaired
    again, and the service re-converges on the healthy model — with
    zero unlabelled stale answers anywhere in the trace.
    """

    seed: int
    requests: int
    fault_window: tuple[float, float]
    plan_text: str
    responses: list[str] = field(default_factory=list)
    ok: int = 0
    degraded: int = 0
    repairing: int = 0
    tiers: dict[int, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    #: Responses that were served off a quarantined or stale model
    #: without carrying their ``degraded``/``repairing`` label — the
    #: hard robustness contract; must be zero.
    unlabelled_stale: int = 0
    #: A tier-1/2 non-degraded answer was served while the fault was
    #: live (i.e. repair promoted a faulted-fingerprint entry).
    converged_during_fault: bool = False
    #: Same, after the fault cleared (re-repair promoted again).
    reconverged_after_clear: bool = False
    repair: dict = field(default_factory=dict)
    final_quarantined: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    drift: "dict | None" = None
    flight_events: list[dict] = field(default_factory=list)

    @property
    def answered(self) -> int:
        return self.ok + self.degraded + sum(self.errors.values())

    @property
    def converged(self) -> bool:
        """Did the loop close, honestly, both ways?"""
        return (
            self.converged_during_fault
            and self.reconverged_after_clear
            and self.unlabelled_stale == 0
            and self.final_quarantined == 0
            and self.repair.get("jobs", 1) == 0
            and (self.drift or {}).get("events", 0) >= 1
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "answered": self.answered,
            "ok": self.ok,
            "degraded": self.degraded,
            "repairing": self.repairing,
            "tiers": {str(t): self.tiers[t] for t in sorted(self.tiers)},
            "errors": {k: self.errors[k] for k in sorted(self.errors)},
            "fault_window": list(self.fault_window),
            "plan": self.plan_text,
            "unlabelled_stale": self.unlabelled_stale,
            "converged_during_fault": self.converged_during_fault,
            "reconverged_after_clear": self.reconverged_after_clear,
            "converged": self.converged,
            "repair": self.repair,
            "final_quarantined": self.final_quarantined,
            "counters": self.counters,
            "drift": self.drift,
            "flight_events": self.flight_events,
            "responses": [r.rstrip("\n") for r in self.responses],
        }

    def render(self) -> str:
        out = [
            f"convergence soak: {self.requests} scripted requests, "
            f"seed {self.seed}",
            f"  fault plan    : {self.plan_text}",
            f"  answered      : {self.answered} "
            f"(ok {self.ok}, degraded {self.degraded} "
            f"of which repairing {self.repairing}, "
            f"errors {sum(self.errors.values())})",
            "  tiers         : " + ", ".join(
                f"{TIER_NAMES[t]} {self.tiers.get(t, 0)}" for t in (1, 2, 3)
            ),
            f"  repair        : started {self.repair.get('started', 0)}, "
            f"promoted {self.repair.get('promoted', 0)}, "
            f"failed {self.repair.get('failed', 0)}, "
            f"jobs left {self.repair.get('jobs', 0)}",
            f"  drift events  : {(self.drift or {}).get('events', 0)}",
            f"  unlabelled    : {self.unlabelled_stale} stale answers "
            "without their label (must be 0)",
            f"  converged     : during fault "
            f"{str(self.converged_during_fault).lower()}, after clearance "
            f"{str(self.reconverged_after_clear).lower()} "
            f"-> {str(self.converged).lower()}",
        ]
        for event in self.flight_events:
            tags = event.get("tags", {})
            what = tags.get("phase", tags.get("regime", ""))
            out.append(
                f"    flight @ {event['t']:7.2f} s {event['kind']:<8s} "
                f"{what}"
            )
        return "\n".join(out)


def run_convergence_soak(
    machine: Machine | None = None,
    requests: int = 160,
    seed: int = DEFAULT_SEED,
    runs: int = 5,
    derate_factor: float = 0.4,
) -> ConvergenceReport:
    """The end-to-end self-healing drill on the production dispatch path.

    Scripted traffic runs while a derate window (still solvable, unlike
    :func:`run_soak`'s partition) covers the middle of the trace; a
    :class:`~repro.healing.repair.RepairSupervisor` is attached and
    pumped once per line.  The report asserts the full loop both ways
    — derate → drift → quarantine → repair → promote → tier-1/2
    serving, then fault-clears → re-repair → re-converge — and counts
    any answer served off a quarantined key without its label
    (``unlabelled_stale``, which must be zero).

    Deterministic end to end: logical clock, named RNG streams (traffic,
    breaker jitter, repair backoff), so same-seed twins are
    byte-identical, repair schedule included.
    """
    from repro.healing.repair import RepairSupervisor

    if machine is None:
        machine = reference_host()
    # Populate the routing planes up front so every fault-window swap
    # re-routes incrementally (RerouteStats bound the quarantine).
    for plane in ("pio", "dma"):
        machine.routing.populate(plane, strict=False)
    registry = RngRegistry(seed)
    device_nodes = sorted({d.node_id for d in machine.devices.values()})
    target = device_nodes[0] if device_nodes else machine.node_ids[-1]

    clock = LogicalClock()
    backend = AdvisoryBackend(machine, registry=registry, runs=runs)
    breaker = CircuitBreaker(
        failure_threshold=2,
        backoff=RetryPolicy(
            max_retries=0, base_delay_s=0.8, multiplier=2.0, jitter=0.25
        ),
        rng=registry.stream("service/soak/breaker-jitter"),
        clock=clock,
    )
    service = PlacementService(backend, breaker=breaker, clock=clock)
    supervisor = RepairSupervisor(
        backend,
        retry=RetryPolicy(
            max_retries=3, base_delay_s=0.4, multiplier=2.0, jitter=0.25
        ),
    ).attach(service)
    backend.warm((target,))

    duration = requests * TICK_S
    window = (round(0.25 * duration, 3), round(0.55 * duration, 3))
    plan = build_derate_plan(
        machine, target, *window, factor=derate_factor
    )
    report = ConvergenceReport(
        seed=seed,
        requests=requests,
        fault_window=window,
        plan_text=plan.describe(),
    )

    traffic = build_traffic(registry, machine, target, requests)
    active: frozenset = frozenset()
    for i, line in enumerate(traffic):
        now = clock()
        live_faults = frozenset(
            f.describe() for f in plan.topology_faults_at(now)
        )
        if live_faults != active:
            if live_faults:
                backend.set_machine(plan.apply(machine, at_s=now))
            else:
                backend.restore_machine()
            active = live_faults
        # The robustness contract is judged against the quarantine
        # state the request was served under.
        try:
            request = json.loads(line)
        except ValueError:
            request = {}
        params = request.get("params") or {}
        quarantined_key = (
            params.get("target"), params.get("mode", "write")
        ) in backend.tiers.quarantined
        response = service.handle_line(line)
        report.responses.append(response)
        payload = json.loads(response)
        if "error" in payload:
            kind = payload["error"]["kind"]
            report.errors[kind] = report.errors.get(kind, 0) + 1
        else:
            result = payload["result"]
            tier = result.get("tier")
            if tier is not None:
                report.tiers[tier] = report.tiers.get(tier, 0) + 1
                if result.get("degraded"):
                    report.degraded += 1
                    if result.get("repairing"):
                        report.repairing += 1
                else:
                    report.ok += 1
                    if tier in (1, 2):
                        if active:
                            report.converged_during_fault = True
                        elif report.converged_during_fault:
                            report.reconverged_after_clear = True
                if (
                    quarantined_key
                    and tier != 3
                    and not result.get("degraded")
                ):
                    report.unlabelled_stale += 1
                if "staleness_s" not in result:
                    report.unlabelled_stale += 1
            else:
                report.ok += 1  # health/ready/metrics
        # The TCP transport pumps on an interval, not per request —
        # mirror that (every 3rd tick) so quarantined keys genuinely
        # serve labelled `repairing` answers before repair lands.
        if i % 3 == 2:
            supervisor.pump(clock())
        clock.advance()
    report.repair = supervisor.stats()
    report.final_quarantined = len(backend.tiers.quarantined)
    service._drain_obs()
    report.counters = {
        k: service.live.counters[k] for k in sorted(service.live.counters)
    }
    if service.drift is not None:
        report.drift = service.drift.stats()
    report.flight_events = [
        event for event in service.live.flight.dump()["events"]
        if event["kind"] in ("drift", "repair", "breaker-trip")
    ]
    return report
